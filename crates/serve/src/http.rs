//! HTTP/1.1 request parsing and response writing.
//!
//! The parser is *incremental*: [`parse_head`] is called on the
//! connection's receive buffer after every read and either yields a
//! complete request head (plus how many bytes it consumed, so
//! keep-alive pipelining works), asks for more bytes, or fails with a
//! typed error that maps onto a status code. A request split into
//! single-byte reads parses identically to one arriving whole — the
//! torture suite checks exactly that.
//!
//! Limits are enforced *while* data accumulates, not after: a request
//! line longer than [`MAX_TARGET_BYTES`] fails with 414 before the
//! head terminator ever shows up, and a head larger than
//! [`MAX_HEAD_BYTES`] fails with 431 — an unauthenticated client
//! cannot grow the buffer unboundedly.

use std::io;

/// Longest accepted request target (the path + query part of the
/// request line). Beyond this the request fails with `414 URI Too
/// Long`.
pub const MAX_TARGET_BYTES: usize = 2048;

/// Largest accepted request head (request line + headers + the blank
/// line). Beyond this the request fails with `431 Request Header
/// Fields Too Large`.
pub const MAX_HEAD_BYTES: usize = 8192;

/// A parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token (always `GET` once parsing succeeded).
    pub method: String,
    /// The request target exactly as sent (path, optionally `?query`).
    pub target: String,
    /// `HTTP/1.0` or `HTTP/1.1`.
    pub version: String,
    /// Header `(name, value)` pairs in arrival order, names as sent.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// The first header named `name` (ASCII case-insensitive), trimmed.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.trim())
    }

    /// Whether the client asked for the connection to close after this
    /// response: an explicit `Connection: close`, or HTTP/1.0 without
    /// `Connection: keep-alive`.
    #[must_use]
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            _ => self.version == "HTTP/1.0",
        }
    }
}

/// A parse failure, each mapping onto one response status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// `400 Bad Request`: a malformed request line, header, or an
    /// unsupported construct (request bodies, non-1.x versions).
    BadRequest(&'static str),
    /// `405 Method Not Allowed`: a well-formed request line whose
    /// method is a valid token other than `GET`.
    MethodNotAllowed,
    /// `414 URI Too Long`: the request target exceeds
    /// [`MAX_TARGET_BYTES`].
    UriTooLong,
    /// `431 Request Header Fields Too Large`: the head exceeds
    /// [`MAX_HEAD_BYTES`].
    HeadersTooLarge,
}

impl ParseError {
    /// The response status code for this failure.
    #[must_use]
    pub fn status(self) -> u16 {
        match self {
            ParseError::BadRequest(_) => 400,
            ParseError::MethodNotAllowed => 405,
            ParseError::UriTooLong => 414,
            ParseError::HeadersTooLarge => 431,
        }
    }

    /// A one-line human explanation for the error body.
    #[must_use]
    pub fn message(self) -> &'static str {
        match self {
            ParseError::BadRequest(msg) => msg,
            ParseError::MethodNotAllowed => "only GET is supported",
            ParseError::UriTooLong => "request target exceeds 2048 bytes",
            ParseError::HeadersTooLarge => "request head exceeds 8192 bytes",
        }
    }
}

/// One step of incremental parsing.
#[derive(Debug)]
pub enum Parsed {
    /// A complete head: `consumed` bytes of the buffer belong to this
    /// request and must be drained before parsing the next one.
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request consumed.
        consumed: usize,
    },
    /// The head is not complete yet — read more bytes.
    Partial,
    /// The head is irrecoverably malformed; respond and close.
    Failed(ParseError),
}

/// Parses one request head from the front of `buf`.
pub fn parse_head(buf: &[u8]) -> Parsed {
    let Some(head_len) = find(buf, b"\r\n\r\n") else {
        // No terminator yet. Enforce limits on what has accumulated so
        // a hostile client cannot grow the buffer forever.
        if buf.len() > MAX_HEAD_BYTES {
            return Parsed::Failed(ParseError::HeadersTooLarge);
        }
        if find(buf, b"\r\n").is_none() && buf.len() > MAX_TARGET_BYTES + 64 {
            // Not even the request line has ended: the target alone
            // already blew the limit (64 bytes of slack covers the
            // method and version tokens around it).
            return Parsed::Failed(ParseError::UriTooLong);
        }
        return Parsed::Partial;
    };
    if head_len + 4 > MAX_HEAD_BYTES {
        return Parsed::Failed(ParseError::HeadersTooLarge);
    }
    let Ok(head) = std::str::from_utf8(&buf[..head_len]) else {
        return Parsed::Failed(ParseError::BadRequest("request head is not valid UTF-8"));
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Parsed::Failed(ParseError::BadRequest(
            "request line is not `METHOD target HTTP/version`",
        ));
    };
    if method.is_empty() || !method.bytes().all(is_token_byte) {
        return Parsed::Failed(ParseError::BadRequest("method is not a valid token"));
    }
    if target.len() > MAX_TARGET_BYTES {
        return Parsed::Failed(ParseError::UriTooLong);
    }
    if !target.starts_with('/') {
        return Parsed::Failed(ParseError::BadRequest("request target must start with `/`"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Parsed::Failed(ParseError::BadRequest("only HTTP/1.0 and HTTP/1.1 are spoken"));
    }
    if method != "GET" {
        return Parsed::Failed(ParseError::MethodNotAllowed);
    }

    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Parsed::Failed(ParseError::BadRequest("header line has no `:`"));
        };
        if name.is_empty() || !name.bytes().all(is_token_byte) {
            return Parsed::Failed(ParseError::BadRequest("header name is not a valid token"));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    let request = Request {
        method: method.to_string(),
        target: target.to_string(),
        version: version.to_string(),
        headers,
    };
    if request.header("transfer-encoding").is_some()
        || request.header("content-length").is_some_and(|v| v != "0")
    {
        return Parsed::Failed(ParseError::BadRequest("GET requests must not carry a body"));
    }
    Parsed::Complete { request, consumed: head_len + 4 }
}

/// RFC 9110 `tchar`: the bytes allowed in method and header-name
/// tokens.
fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// First index of `needle` in `haystack`.
fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// A response ready to be written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// The body, written verbatim after the head.
    pub body: String,
    /// Extra headers, written after the fixed set.
    pub extra: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, body: String) -> Response {
        Response { status, content_type: "application/json", body, extra: Vec::new() }
    }

    /// The uniform JSON error body: `{"error": …, "status": …}`.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Response {
        let body = crate::json::Json::obj(vec![
            ("error", crate::json::Json::str(message)),
            ("status", crate::json::Json::U64(u64::from(status))),
        ])
        .render();
        let mut response = Response::json(status, body);
        if status == 405 {
            response.extra.push(("Allow", "GET".to_string()));
        }
        response
    }
}

/// The reason phrase for every status this server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        414 => "URI Too Long",
        422 => "Unprocessable Content",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes `response` to `out` as an HTTP/1.1 message. `close` decides
/// the `Connection` header (and must match what the caller then does
/// with the stream).
pub fn write_response(
    out: &mut impl io::Write,
    response: &Response,
    close: bool,
) -> io::Result<()> {
    let mut head = String::new();
    use std::fmt::Write as _;
    let _ = write!(head, "HTTP/1.1 {} {}\r\n", response.status, reason(response.status));
    let _ = write!(head, "Content-Type: {}\r\n", response.content_type);
    let _ = write!(head, "Content-Length: {}\r\n", response.body.len());
    let _ = write!(head, "Connection: {}\r\n", if close { "close" } else { "keep-alive" });
    for (name, value) in &response.extra {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.push_str("\r\n");
    out.write_all(head.as_bytes())?;
    out.write_all(response.body.as_bytes())?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(raw: &str) -> (Request, usize) {
        match parse_head(raw.as_bytes()) {
            Parsed::Complete { request, consumed } => (request, consumed),
            other => panic!("expected a complete parse, got {other:?}"),
        }
    }

    fn failed(raw: &str) -> ParseError {
        match parse_head(raw.as_bytes()) {
            Parsed::Failed(err) => err,
            other => panic!("expected a parse failure, got {other:?}"),
        }
    }

    #[test]
    fn a_plain_get_parses() {
        let (req, consumed) = complete("GET /status HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/status");
        assert_eq!(req.version, "HTTP/1.1");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(consumed, "GET /status HTTP/1.1\r\nHost: x\r\n\r\n".len());
        assert!(!req.wants_close());
    }

    #[test]
    fn every_prefix_of_a_request_is_partial() {
        let raw = b"GET /api/summary HTTP/1.1\r\nHost: split\r\n\r\n";
        for end in 0..raw.len() {
            assert!(
                matches!(parse_head(&raw[..end]), Parsed::Partial),
                "prefix of {end} bytes must be partial"
            );
        }
        assert!(matches!(parse_head(raw), Parsed::Complete { .. }));
    }

    #[test]
    fn consumed_supports_pipelining() {
        let raw = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (req, consumed) = complete(raw);
        assert_eq!(req.target, "/a");
        let (req2, _) = complete(&raw[consumed..]);
        assert_eq!(req2.target, "/b");
    }

    #[test]
    fn close_semantics_follow_version_and_connection() {
        let (req, _) = complete("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(req.wants_close());
        let (req, _) = complete("GET / HTTP/1.0\r\n\r\n");
        assert!(req.wants_close(), "HTTP/1.0 defaults to close");
        let (req, _) = complete("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(!req.wants_close());
    }

    #[test]
    fn non_get_methods_are_405() {
        assert_eq!(failed("POST /status HTTP/1.1\r\n\r\n"), ParseError::MethodNotAllowed);
        assert_eq!(failed("BREW /pot HTTP/1.1\r\n\r\n"), ParseError::MethodNotAllowed);
    }

    #[test]
    fn malformed_request_lines_are_400() {
        assert!(matches!(failed("GARBAGE\r\n\r\n"), ParseError::BadRequest(_)));
        assert!(matches!(failed("how now brown cow\r\n\r\n"), ParseError::BadRequest(_)));
        assert!(matches!(failed("GET /x HTTP/2.0\r\n\r\n"), ParseError::BadRequest(_)));
        assert!(matches!(failed("GET nopath HTTP/1.1\r\n\r\n"), ParseError::BadRequest(_)));
        assert!(matches!(failed("G@T / HTTP/1.1\r\n\r\n"), ParseError::BadRequest(_)));
        assert!(matches!(failed("GET / HTTP/1.1\r\nnocolon\r\n\r\n"), ParseError::BadRequest(_)));
    }

    #[test]
    fn request_bodies_are_rejected() {
        assert!(matches!(
            failed("GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\n"),
            ParseError::BadRequest(_)
        ));
        assert!(matches!(
            failed("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            ParseError::BadRequest(_)
        ));
        let (_, _) = complete("GET / HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    }

    #[test]
    fn oversized_targets_fail_with_414_even_before_the_line_ends() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_TARGET_BYTES + 10));
        assert_eq!(failed(&long), ParseError::UriTooLong);
        // No CRLF anywhere yet — the limit still trips.
        let unterminated = format!("GET /{}", "a".repeat(MAX_TARGET_BYTES + 100));
        assert_eq!(failed(&unterminated), ParseError::UriTooLong);
    }

    #[test]
    fn oversized_heads_fail_with_431() {
        let huge = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "b".repeat(MAX_HEAD_BYTES));
        assert_eq!(failed(&huge), ParseError::HeadersTooLarge);
        // Still unterminated but already over the cap.
        let unterminated = format!("GET / HTTP/1.1\r\nX-Pad: {}", "b".repeat(MAX_HEAD_BYTES));
        assert_eq!(failed(&unterminated), ParseError::HeadersTooLarge);
    }

    #[test]
    fn response_writer_emits_exact_framing() {
        let mut out = Vec::new();
        let response = Response::json(200, "{}".to_string());
        write_response(&mut out, &response, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\
             Connection: keep-alive\r\n\r\n{}"
        );
    }

    #[test]
    fn error_responses_carry_the_allow_header_on_405() {
        let response = Response::error(405, "only GET is supported");
        assert_eq!(response.extra, vec![("Allow", "GET".to_string())]);
        let mut out = Vec::new();
        write_response(&mut out, &response, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Allow: GET\r\n"));
        assert!(text.contains("Connection: close"));
    }
}
