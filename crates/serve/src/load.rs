//! The `bench-serve` load generator: N pool-driven keep-alive clients
//! hammering a mixed endpoint schedule.
//!
//! Each client owns one keep-alive connection and walks the target
//! schedule round-robin from a per-client offset, so concurrent
//! clients hit different endpoints at any instant. Latency is
//! recorded per request into `arest-obs` histograms
//! (`serve.bench.latency.us` overall plus one per endpoint label),
//! from which the caller reads p50/p95/p99 for `BENCH_serve.json`.

use crate::router;
use arest_obs::Registry;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Load-run parameters.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Concurrent keep-alive clients.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
}

/// What one load run did.
#[derive(Debug, Clone, Copy)]
pub struct LoadReport {
    /// Requests that completed with status 200.
    pub ok: u64,
    /// Requests that failed (non-200, I/O error, unparseable reply).
    pub failed: u64,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Total requests attempted.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.ok + self.failed
    }

    /// Completed requests per wall-clock second.
    #[must_use]
    pub fn requests_per_second(&self) -> f64 {
        let seconds = self.elapsed.as_secs_f64();
        if seconds <= 0.0 {
            0.0
        } else {
            self.requests() as f64 / seconds
        }
    }
}

/// The metric label a schedule target records under: the route's
/// label when it resolves, `other` for deliberate error targets.
#[must_use]
pub fn target_label(target: &str) -> &'static str {
    router::route(target).map_or("other", router::Route::label)
}

/// Runs the load: `config.clients` concurrent keep-alive clients,
/// each issuing `config.requests_per_client` requests round-robin
/// over `targets`. Latencies land in `registry` histograms
/// (`serve.bench.latency.us` and `.{endpoint}`); the registry should
/// be enabled, or the percentiles will read zero.
pub fn run(
    addr: SocketAddr,
    targets: &[String],
    config: &LoadConfig,
    registry: &Registry,
) -> LoadReport {
    assert!(!targets.is_empty(), "the endpoint schedule must not be empty");
    let overall = registry.histogram("serve.bench.latency.us");
    let per_endpoint: Vec<_> = targets
        .iter()
        .map(|t| registry.histogram(&format!("serve.bench.latency.us.{}", target_label(t))))
        .collect();

    let started = Instant::now();
    let outcomes = arest_tnt::pool::run_indexed(
        (0..config.clients).collect(),
        config.clients.max(1),
        &|_, client| {
            let mut ok = 0u64;
            let mut failed = 0u64;
            let mut conn = Client::connect(addr);
            for request in 0..config.requests_per_client {
                let slot = (client + request) % targets.len();
                let target = &targets[slot];
                let t0 = Instant::now();
                let status = match conn.as_mut() {
                    Some(client) => client.get(target),
                    None => None,
                };
                let elapsed = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
                match status {
                    Some(200) => {
                        ok += 1;
                        overall.record(elapsed);
                        per_endpoint[slot].record(elapsed);
                    }
                    _ => {
                        failed += 1;
                        // Reconnect once; keep-alive may have raced a
                        // server-side close.
                        conn = Client::connect(addr);
                    }
                }
            }
            (ok, failed)
        },
    );
    let (ok, failed) = outcomes.iter().fold((0, 0), |(ok, failed), &(o, f)| (ok + o, failed + f));
    LoadReport { ok, failed, elapsed: started.elapsed() }
}

/// A minimal blocking HTTP/1.1 client over one keep-alive connection.
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Option<Client> {
        let stream = TcpStream::connect(addr).ok()?;
        stream.set_nodelay(true).ok()?;
        stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
        Some(Client { stream, buf: Vec::new() })
    }

    /// Issues one GET and reads the full response. Returns the status
    /// code, or `None` on any I/O or framing failure.
    fn get(&mut self, target: &str) -> Option<u16> {
        let request = format!("GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n");
        self.stream.write_all(request.as_bytes()).ok()?;
        let (status, body_len, head_len) = loop {
            if let Some((status, body_len, head_len)) = parse_response_head(&self.buf) {
                break (status, body_len, head_len);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(_) => return None,
            }
        };
        while self.buf.len() < head_len + body_len {
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(_) => return None,
            }
        }
        self.buf.drain(..head_len + body_len);
        Some(status)
    }
}

/// Parses a response head: `(status, content_length, head_bytes)`.
/// `None` while incomplete.
fn parse_response_head(buf: &[u8]) -> Option<(u16, usize, usize)> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    let status = status_line.split(' ').nth(1)?.parse::<u16>().ok()?;
    let mut content_length = 0usize;
    for line in lines {
        let (name, value) = line.split_once(':')?;
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().ok()?;
        }
    }
    Some((status, content_length, head_end + 4))
}

/// Exposed for the torture tests: issues one request over a fresh
/// connection and returns `(status, headers, body)`.
#[doc(hidden)]
pub fn one_shot(addr: SocketAddr, raw_request: &[u8]) -> Option<(u16, String, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    stream.write_all(raw_request).ok()?;
    let mut buf = Vec::new();
    loop {
        if let Some((status, body_len, head_len)) = parse_response_head(&buf) {
            while buf.len() < head_len + body_len {
                let mut chunk = [0u8; 4096];
                match stream.read(&mut chunk) {
                    Ok(0) => return None,
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    Err(_) => return None,
                }
            }
            let head = String::from_utf8_lossy(&buf[..head_len]).into_owned();
            let body = String::from_utf8_lossy(&buf[head_len..head_len + body_len]).into_owned();
            return Some((status, head, body));
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_head_parsing_handles_split_arrival() {
        let raw =
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}";
        for end in 0..raw.len() {
            let parsed = parse_response_head(&raw[..end]);
            if end < raw.len() - 2 {
                assert!(parsed.is_none(), "head incomplete at {end}");
            }
        }
        let (status, body_len, head_len) = parse_response_head(raw).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body_len, 2);
        assert_eq!(head_len, raw.len() - 2);
    }

    #[test]
    fn target_labels_classify_the_schedule() {
        assert_eq!(target_label("/api/summary"), "summary");
        assert_eq!(target_label("/api/as/293"), "as");
        assert_eq!(target_label("/api/addr/10.0.0.1"), "addr");
        assert_eq!(target_label("/metrics"), "metrics");
        assert_eq!(target_label("/status"), "status");
        assert_eq!(target_label("/nope"), "other");
    }

    #[test]
    fn report_arithmetic() {
        let report = LoadReport { ok: 99, failed: 1, elapsed: std::time::Duration::from_secs(2) };
        assert_eq!(report.requests(), 100);
        assert!((report.requests_per_second() - 50.0).abs() < f64::EPSILON);
    }
}
