//! The in-tree JSON encoder every endpoint body goes through.
//!
//! The suite's artifact writers hand-roll their JSON inline
//! (`BENCH_pipeline.json`, the trace exporter); an HTTP API needs the
//! opposite discipline — one encoder, one escaping routine, one
//! layout — so that `docs/API.md` can quote bodies verbatim and a
//! test can assert them byte-for-byte. The encoder is deliberately
//! small: objects are ordered pairs (insertion order is rendering
//! order), numbers are integers (the API serves counts, never
//! floats), and rendering is pretty-printed with two-space indents so
//! the documented examples read as a manual.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (counts, identifiers, bucket bounds).
    U64(u64),
    /// A signed integer (gauge levels).
    I64(i64),
    /// A string, escaped on render.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: insertion order is rendering order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// `Str` when present, `Null` otherwise.
    #[must_use]
    pub fn opt_str(s: Option<&str>) -> Json {
        s.map_or(Json::Null, Json::str)
    }

    /// Renders the tree: two-space indents, `": "` after keys, no
    /// trailing newline. The exact bytes `docs/API.md` quotes.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::U64(n as u64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// RFC 8259 string escaping: the two mandatory escapes, the common
/// control-character shorthands, and `\u00XX` for the rest of C0.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_bare() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(42).render(), "42");
        assert_eq!(Json::I64(-7).render(), "-7");
        assert_eq!(Json::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn strings_escape_quotes_backslashes_and_controls() {
        assert_eq!(Json::str("a\"b\\c").render(), r#""a\"b\\c""#);
        assert_eq!(Json::str("x\ny\tz").render(), r#""x\ny\tz""#);
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
        assert_eq!(Json::str("Cisco|Huawei").render(), "\"Cisco|Huawei\"");
    }

    #[test]
    fn empty_containers_stay_inline() {
        assert_eq!(Json::Arr(vec![]).render(), "[]");
        assert_eq!(Json::Obj(vec![]).render(), "{}");
    }

    #[test]
    fn nested_layout_is_two_space_pretty() {
        let v = Json::obj(vec![
            ("asn", Json::U64(293)),
            ("tags", Json::Arr(vec![Json::str("a"), Json::str("b")])),
            ("inner", Json::obj(vec![("ok", Json::Bool(true))])),
        ]);
        let expected = "{\n  \"asn\": 293,\n  \"tags\": [\n    \"a\",\n    \"b\"\n  ],\n  \
                        \"inner\": {\n    \"ok\": true\n  }\n}";
        assert_eq!(v.render(), expected);
    }

    #[test]
    fn opt_str_maps_none_to_null() {
        assert_eq!(Json::opt_str(None).render(), "null");
        assert_eq!(Json::opt_str(Some("x")).render(), "\"x\"");
    }
}
