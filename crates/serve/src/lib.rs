//! `arest-serve`: a dependency-free HTTP/1.1 query daemon for SR
//! deployment data.
//!
//! The crate is a hand-rolled HTTP server — listener, incremental
//! request parser, router, and response writer — that loads a
//! completed campaign's results (as a [`store::Store`]) and answers
//! operator queries over plain HTTP:
//!
//! | Route | Answer |
//! |---|---|
//! | `GET /api/summary` | campaign-wide totals + per-AS rollup |
//! | `GET /api/as/{asn}` | one AS's SR deployment summary |
//! | `GET /api/addr/{ip}` | per-address detections with full provenance |
//! | `GET /api/runs` | every run committed to the attached ledger |
//! | `GET /api/runs/{serial}` | one committed run's header + totals |
//! | `GET /api/diff/{a}/{b}` | announce/withdraw delta between two runs |
//! | `GET /metrics` | Prometheus text from the `arest-obs` registry |
//! | `GET /status` | liveness + dataset facts + ledger provenance |
//!
//! # Architecture
//!
//! Concurrency rides the existing [`arest_tnt::pool`] work-stealing
//! pool via [`pool::run_dynamic`](arest_tnt::pool::run_dynamic): one
//! long-lived *accept* unit camps on the nonblocking listener and
//! injects one *connection* unit per accepted socket, so the same
//! worker threads that power campaigns serve HTTP. All locks and
//! atomics come from the `arest-conc` facades, and every lifecycle
//! invariant (no admission after shutdown, drain-before-exit) lives in
//! [`dispatch::DispatchCore`], which the `model-check` scheduler
//! explores exhaustively in `tests/model_serve.rs`.
//!
//! JSON is produced by the in-tree [`json::Json`] encoder — no serde —
//! and every body is byte-deterministic for a given dataset, which is
//! what lets `docs/API.md` quote example responses verbatim and have a
//! test (`api_md.rs` in `arest-experiments`) hold them to it.
//!
//! The crate knows nothing about campaign types: `arest-experiments`
//! converts its `Dataset` into the plain [`store::Store`] rows and
//! hands them over, keeping the dependency arrow pointing the same way
//! as every other crate here (`serve` sits beside `obs`/`tnt`, not
//! above the pipeline).
#![warn(missing_docs)]

pub mod dispatch;
pub mod http;
pub mod json;
pub mod ledger_bridge;
pub mod ledger_watch;
pub mod load;
pub mod prom;
pub mod router;
pub mod server;
pub mod store;
pub mod store_cell;

pub use dispatch::{DispatchCore, DispatchStats};
pub use json::Json;
pub use load::{LoadConfig, LoadReport};
pub use router::{route, Route, RouteError};
pub use server::{Server, ShutdownHandle};
pub use store::{AddrRecord, AsSummary, Detection, FlagCounts, Store, SummaryInfo};
pub use store_cell::{LedgerStamp, RunOrigin, StoreCell, StoreVersion};
