//! Request-target routing: one pure function from a target string to
//! a typed [`Route`], so the status-code matrix (404 vs 422) is
//! testable without a socket.

use std::net::Ipv4Addr;

/// The eight routes the daemon serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /api/summary` — dataset-wide totals.
    Summary,
    /// `GET /api/as/{asn}` — one AS's deployment summary.
    As(u32),
    /// `GET /api/addr/{ip}` — one address's evidence chains.
    Addr(Ipv4Addr),
    /// `GET /api/runs` — every committed ledger run.
    Runs,
    /// `GET /api/runs/{serial}` — one committed run's header + totals.
    Run(u64),
    /// `GET /api/diff/{a}/{b}` — announce/withdraw delta between runs.
    Diff(u64, u64),
    /// `GET /metrics` — Prometheus text exposition.
    Metrics,
    /// `GET /status` — daemon liveness and dataset facts.
    Status,
}

impl Route {
    /// The metric label for this route (`serve.http.requests.<label>`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Route::Summary => "summary",
            Route::As(_) => "as",
            Route::Addr(_) => "addr",
            Route::Runs => "runs",
            Route::Run(_) => "run",
            Route::Diff(..) => "diff",
            Route::Metrics => "metrics",
            Route::Status => "status",
        }
    }
}

/// Why a target did not map to a route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// `404 Not Found`: no such route shape.
    NotFound,
    /// `422 Unprocessable Content`: the route exists but a path
    /// parameter does not parse.
    Unprocessable(&'static str),
}

/// Maps a request target onto a [`Route`].
///
/// The query string (from the first `?`) and fragment (from the first
/// `#`) are stripped and ignored — no endpoint takes query
/// parameters. Dot segments (`.` / `..`) are rejected outright with
/// 422 wherever they appear, so `{ip}` traversal attempts never reach
/// parameter parsing; percent-escapes are not decoded and therefore
/// fail the strict parameter parses the same way.
pub fn route(target: &str) -> Result<Route, RouteError> {
    let path = target.split(['?', '#']).next().unwrap_or("");
    let Some(rest) = path.strip_prefix('/') else {
        return Err(RouteError::NotFound);
    };
    let segments: Vec<&str> = rest.split('/').collect();
    if segments.iter().any(|s| *s == "." || *s == "..") {
        return Err(RouteError::Unprocessable("dot segments are rejected"));
    }
    match segments.as_slice() {
        ["status"] => Ok(Route::Status),
        ["metrics"] => Ok(Route::Metrics),
        ["api", "summary"] => Ok(Route::Summary),
        ["api", "as", asn] => {
            if !asn.is_empty() && asn.bytes().all(|b| b.is_ascii_digit()) {
                asn.parse::<u32>()
                    .map(Route::As)
                    .map_err(|_| RouteError::Unprocessable("AS number exceeds 32 bits"))
            } else {
                Err(RouteError::Unprocessable("the {asn} segment must be decimal digits"))
            }
        }
        ["api", "addr", ip] => ip
            .parse::<Ipv4Addr>()
            .map(Route::Addr)
            .map_err(|_| RouteError::Unprocessable("the {ip} segment must be an IPv4 dotted quad")),
        ["api", "runs"] => Ok(Route::Runs),
        ["api", "runs", serial] => serial_of(serial).map(Route::Run),
        ["api", "diff", a, b] => Ok(Route::Diff(serial_of(a)?, serial_of(b)?)),
        _ => Err(RouteError::NotFound),
    }
}

/// Parses one `{serial}` path segment: strict decimal digits, u64.
fn serial_of(segment: &str) -> Result<u64, RouteError> {
    if segment.is_empty() || !segment.bytes().all(|b| b.is_ascii_digit()) {
        return Err(RouteError::Unprocessable("a run serial must be decimal digits"));
    }
    segment.parse::<u64>().map_err(|_| RouteError::Unprocessable("run serial exceeds 64 bits"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_eight_routes_resolve() {
        assert_eq!(route("/status"), Ok(Route::Status));
        assert_eq!(route("/metrics"), Ok(Route::Metrics));
        assert_eq!(route("/api/summary"), Ok(Route::Summary));
        assert_eq!(route("/api/as/293"), Ok(Route::As(293)));
        assert_eq!(route("/api/addr/10.0.0.1"), Ok(Route::Addr(Ipv4Addr::new(10, 0, 0, 1))));
        assert_eq!(route("/api/runs"), Ok(Route::Runs));
        assert_eq!(route("/api/runs/12"), Ok(Route::Run(12)));
        assert_eq!(route("/api/diff/1/2"), Ok(Route::Diff(1, 2)));
    }

    #[test]
    fn ledger_route_parameters_are_strict() {
        assert!(matches!(route("/api/runs/one"), Err(RouteError::Unprocessable(_))));
        assert!(matches!(route("/api/runs/-1"), Err(RouteError::Unprocessable(_))));
        assert!(matches!(
            route("/api/runs/99999999999999999999"),
            Err(RouteError::Unprocessable(_))
        ));
        assert!(matches!(route("/api/diff/1/x"), Err(RouteError::Unprocessable(_))));
        assert_eq!(route("/api/diff/1"), Err(RouteError::NotFound), "diff needs two serials");
        assert_eq!(route("/api/diff/1/2/3"), Err(RouteError::NotFound));
    }

    #[test]
    fn query_strings_and_fragments_are_stripped() {
        assert_eq!(route("/status?verbose=1"), Ok(Route::Status));
        assert_eq!(route("/api/as/293?pretty"), Ok(Route::As(293)));
        assert_eq!(route("/metrics#anchor"), Ok(Route::Metrics));
    }

    #[test]
    fn unknown_shapes_are_not_found() {
        assert_eq!(route("/"), Err(RouteError::NotFound));
        assert_eq!(route("/nope"), Err(RouteError::NotFound));
        assert_eq!(route("/api"), Err(RouteError::NotFound));
        assert_eq!(route("/api/as"), Err(RouteError::NotFound));
        assert_eq!(route("/api/as/1/extra"), Err(RouteError::NotFound));
        assert_eq!(route("/status/"), Err(RouteError::NotFound), "no trailing slashes");
    }

    #[test]
    fn bad_parameters_are_unprocessable() {
        assert!(matches!(route("/api/as/AS293"), Err(RouteError::Unprocessable(_))));
        assert!(matches!(route("/api/as/-1"), Err(RouteError::Unprocessable(_))));
        assert!(matches!(route("/api/as/99999999999"), Err(RouteError::Unprocessable(_))));
        assert!(matches!(route("/api/addr/not-an-ip"), Err(RouteError::Unprocessable(_))));
        assert!(matches!(route("/api/addr/10.0.0.999"), Err(RouteError::Unprocessable(_))));
        assert!(matches!(route("/api/addr/10.0.0.1%00"), Err(RouteError::Unprocessable(_))));
    }

    #[test]
    fn dot_segments_never_reach_parameter_parsing() {
        assert!(matches!(route("/api/addr/.."), Err(RouteError::Unprocessable(_))));
        assert!(matches!(route("/api/addr/../secrets"), Err(RouteError::Unprocessable(_))));
        assert!(matches!(route("/api/../status"), Err(RouteError::Unprocessable(_))));
        assert!(matches!(route("/./status"), Err(RouteError::Unprocessable(_))));
    }
}
