//! The ledger directory watcher: how a running daemon picks up newly
//! committed serials with zero downtime.
//!
//! [`Ledger::commit`] publishes a snapshot by atomically renaming a
//! complete, checksummed file into the directory, so polling is safe:
//! the watcher either sees the new `run-<serial>.arest` in full or
//! not at all. When [`refresh`] observes a serial newer than the one
//! the [`StoreCell`] serves, it loads and verifies the file, rebuilds
//! the serving store, and swaps it in — requests in flight keep the
//! version they loaded, the next request gets the new one, and the
//! cell's monotonicity check makes racing watchers harmless.
//!
//! Verification failures (a corrupt file, a mid-rename glimpse on a
//! non-POSIX filesystem) leave the current version serving and are
//! retried on the next poll; the ledger's own `ledger.errors` counter
//! records them.

use crate::ledger_bridge::store_from_snapshot;
use crate::store_cell::{LedgerStamp, RunOrigin, StoreCell, StoreVersion};
use arest_ledger::{Ledger, LedgerResult};
use std::sync::Arc;
use std::time::Duration;

/// One poll step: if the ledger holds a serial newer than the cell
/// serves, load it and swap it in. Returns the serial swapped in, or
/// `None` when the cell was already current (or the directory is
/// empty).
pub fn refresh(cell: &StoreCell, ledger: &Ledger) -> LedgerResult<Option<u64>> {
    let Some(latest) = ledger.latest()? else {
        return Ok(None);
    };
    if cell.serial().is_some_and(|serving| serving >= latest) {
        return Ok(None);
    }
    let run = ledger.load(latest)?;
    // A missing or unreadable sidecar only costs the origin
    // breakdown; the run itself still serves.
    let origin = ledger.load_aux(latest).ok().flatten().map(|aux| {
        let carried = aux.carried.len() as u64;
        RunOrigin {
            base_serial: aux.base_serial,
            fresh: (run.snapshot.ases.len() as u64).saturating_sub(carried),
            carried,
        }
    });
    let version = StoreVersion {
        store: Arc::new(store_from_snapshot(&run.snapshot)),
        stamp: Some(LedgerStamp {
            serial: run.meta.serial,
            payload_digest: run.meta.payload_digest,
            committed_unix: run.meta.committed_unix,
            origin,
        }),
    };
    Ok(cell.swap(version).then_some(latest))
}

/// Polls `ledger` every `poll` until `stop` returns true, swapping
/// newer serials into `cell` as they land. Run it on its own thread
/// (`arest_conc::thread::scope`) beside [`Server::run`].
///
/// [`Server::run`]: crate::server::Server::run
pub fn watch(cell: &StoreCell, ledger: &Ledger, poll: Duration, stop: &(dyn Fn() -> bool + Sync)) {
    while !stop() {
        // A failed refresh (transient IO, a corrupt commit) keeps the
        // current version serving; the next poll retries.
        let _ = refresh(cell, ledger);
        std::thread::sleep(poll);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger_bridge::snapshot_from_store;
    use crate::store::tests::tiny;
    use arest_ledger::CommitOptions;
    use std::path::PathBuf;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("arest-serve-watch-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn refresh_swaps_new_serials_and_idles_otherwise() {
        let dir = scratch_dir("refresh");
        let ledger = Ledger::open(&dir).expect("open");
        let cell = StoreCell::bare(Arc::new(tiny()));

        // Empty directory: nothing to do.
        assert_eq!(refresh(&cell, &ledger).expect("refresh"), None);

        let options = CommitOptions { committed_unix: 1_750_000_000, ..Default::default() };
        ledger.commit(&snapshot_from_store(&tiny()), &options).expect("commit");
        assert_eq!(refresh(&cell, &ledger).expect("refresh"), Some(1));
        assert_eq!(cell.serial(), Some(1));

        // Already current: idempotent.
        assert_eq!(refresh(&cell, &ledger).expect("refresh"), None);

        ledger.commit(&snapshot_from_store(&tiny()), &options).expect("commit");
        assert_eq!(refresh(&cell, &ledger).expect("refresh"), Some(2));
        assert_eq!(cell.serial(), Some(2));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn a_corrupt_latest_leaves_the_current_version_serving() {
        let dir = scratch_dir("corrupt");
        let ledger = Ledger::open(&dir).expect("open");
        let cell = StoreCell::bare(Arc::new(tiny()));
        let options = CommitOptions::default();
        ledger.commit(&snapshot_from_store(&tiny()), &options).expect("commit");
        refresh(&cell, &ledger).expect("refresh");

        // Serial 2 lands bit-flipped: refresh errors, the cell stays
        // on serial 1.
        let receipt = ledger.commit(&snapshot_from_store(&tiny()), &options).expect("commit");
        let mut bytes = std::fs::read(&receipt.path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&receipt.path, &bytes).expect("rewrite");
        assert!(refresh(&cell, &ledger).is_err());
        assert_eq!(cell.serial(), Some(1), "corruption must not dethrone the served store");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
