//! Exhaustive model check of the server's accept/dispatch core
//! (`cargo test -p arest-serve --features model-check`).
//!
//! The invariants under test are the ones graceful shutdown rests on
//! (`DESIGN.md` §12): no connection is admitted after shutdown, no
//! admitted connection is lost, and the drain barrier terminates
//! under every interleaving of accepts, completions, and the SIGINT
//! that races them.

#![cfg(feature = "model-check")]

use arest_conc::model::Model;
use arest_serve::DispatchCore;

/// Invariant: a SIGINT racing two accept/serve workers never loses an
/// admitted connection — whatever the interleaving, every connection
/// that `admit()` accepted is finished before `await_drain` returns,
/// and the counters agree.
#[test]
fn model_shutdown_never_loses_admitted_connections() {
    let report = Model::default().check(|| {
        let core = DispatchCore::default();
        arest_conc::thread::scope(|s| {
            // Two workers each try to admit-and-serve one connection,
            // as the pool would after two accepts.
            let worker = s.spawn(|| {
                if core.admit() {
                    core.finish();
                    true
                } else {
                    false
                }
            });
            // SIGINT races the admissions.
            let signal = s.spawn(|| core.request_shutdown());
            let mine = if core.admit() {
                core.finish();
                true
            } else {
                false
            };
            let theirs = worker.join().expect("serving worker");
            signal.join().expect("signal thread");
            // The drain barrier must terminate under every schedule…
            core.await_drain();
            let stats = core.stats();
            // …with every admitted connection served, none in flight.
            let admitted = u64::from(mine) + u64::from(theirs);
            assert_eq!(stats.accepted, admitted, "accepted tracks successful admits");
            assert_eq!(stats.completed, admitted, "every admitted connection finished");
            assert_eq!(stats.in_flight, 0, "drain left nothing in flight");
        });
    });
    assert!(report.complete, "schedule space not exhausted in {} runs", report.runs);
}

/// Invariant: once shutdown is requested, the admission gate is shut
/// under the same lock that counts admissions — an accept unit that
/// observes `admit() == false` can drop the connection knowing the
/// drain barrier never promised to serve it.
#[test]
fn model_no_admission_after_shutdown_under_any_schedule() {
    let report = Model::default().check(|| {
        let core = DispatchCore::default();
        arest_conc::thread::scope(|s| {
            let acceptor = s.spawn(|| {
                let first = core.admit();
                if first {
                    core.finish();
                }
                let second = core.admit();
                if second {
                    core.finish();
                }
                (first, second)
            });
            core.request_shutdown();
            let (first, second) = acceptor.join().expect("acceptor");
            // Admission is monotone: once refused, refused forever.
            assert!(first || !second, "admission cannot recover after a refusal");
            // And definitely refused once shutdown has been observed.
            assert!(!core.admit(), "gate stays shut after request_shutdown returned");
        });
        core.await_drain();
        let stats = core.stats();
        assert_eq!(stats.accepted, stats.completed);
        assert_eq!(stats.in_flight, 0);
    });
    assert!(report.complete, "schedule space not exhausted in {} runs", report.runs);
}

/// Invariant: `await_drain` running concurrently with the last
/// `finish` and the shutdown request neither deadlocks nor returns
/// early (it must observe both the flag and the drained counts).
#[test]
fn model_drain_barrier_terminates_against_concurrent_finish() {
    let report = Model::default().check(|| {
        let core = DispatchCore::default();
        assert!(core.admit(), "admission before shutdown always succeeds");
        arest_conc::thread::scope(|s| {
            let waiter = s.spawn(|| {
                core.await_drain();
                // Post-drain: shutdown seen and nothing in flight.
                let stats = core.stats();
                assert_eq!(stats.in_flight, 0, "drain returned with work in flight");
            });
            let finisher = s.spawn(|| core.finish());
            core.request_shutdown();
            finisher.join().expect("finisher");
            waiter.join().expect("drain waiter");
        });
        assert_eq!(core.stats().completed, 1);
    });
    assert!(report.complete, "schedule space not exhausted in {} runs", report.runs);
}
