//! Zero-downtime refresh torture: a new ledger serial lands while a
//! keep-alive client is mid-session, and every response — before,
//! during, and after the atomic store swap — is a complete, untorn
//! body from exactly one committed snapshot. No request is dropped,
//! the connection never closes, and `/status` converges on the new
//! serial.
//!
//! The swap path itself is model-checked in `model_store_cell.rs`;
//! this test exercises the same `StoreCell` end-to-end through real
//! sockets, the watcher thread, and the ledger directory.

use arest_ledger::{CommitOptions, Ledger};
use arest_serve::ledger_bridge::{snapshot_from_store, store_from_snapshot};
use arest_serve::ledger_watch::{refresh, watch};
use arest_serve::store::{AddrRecord, AsSummary, Detection, ProvenanceInfo, SummaryInfo};
use arest_serve::{FlagCounts, Server, Store};
use std::io::{Read as _, Write as _};
use std::net::{Ipv4Addr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// A small store whose contents vary with `generation`, so the two
/// committed snapshots serve visibly different `/api/summary` bodies.
fn generation_store(generation: u64) -> Store {
    let mut flags = FlagCounts::default();
    flags.add("CVR");
    let mut ases = vec![AsSummary {
        id: 1,
        asn: 64512,
        name: "Test Net".to_string(),
        astype: "Stub".to_string(),
        confirmation: "none".to_string(),
        analyzed: true,
        targets_probed: 8,
        traces: 5 + generation,
        addresses: 3,
        fingerprinted: 1,
        flags,
    }];
    if generation > 1 {
        let mut late = FlagCounts::default();
        late.add("LSO");
        ases.push(AsSummary {
            id: 2,
            asn: 64513,
            name: "Late Net".to_string(),
            astype: "Transit".to_string(),
            confirmation: "survey".to_string(),
            analyzed: true,
            targets_probed: 8,
            traces: 2,
            addresses: 1,
            fingerprinted: 0,
            flags: late,
        });
    }
    let addr = AddrRecord {
        addr: Ipv4Addr::new(10, 0, 0, 1),
        asn: 64512,
        as_name: "Test Net".to_string(),
        fingerprint: Some("Cisco".to_string()),
        fingerprint_source: Some("snmp".to_string()),
        detections: vec![Detection {
            asn: 64512,
            vp: "vp00".to_string(),
            dst: "10.0.0.9".to_string(),
            flag: "CVR".to_string(),
            stars: 5,
            start: 1,
            end: 3,
            label: 16001,
            suffix_based: false,
            provenance: ProvenanceInfo {
                trigger_hop: 1,
                run_len: 3,
                distinct_addrs: 3,
                lses_consulted: 3,
                effective_depth: 1,
                fingerprint: Some("Cisco".to_string()),
                label_in_vendor_range: true,
                suffix_matched: false,
                chain: "trigger_hop=1 run_len=3".to_string(),
            },
        }],
    };
    let summary = SummaryInfo {
        ases: ases.len() as u64,
        analyzed: ases.len() as u64,
        sr_deployed: 1,
        addresses: 3 + generation,
        fingerprinted: 1,
        raw_traces: 40 + generation,
        intra_as_traces: 5,
        vantage_points: 4,
        flags,
    };
    Store::new(ases, vec![addr], summary)
}

fn commit_generation(ledger: &Ledger, generation: u64) {
    let snapshot = snapshot_from_store(&generation_store(generation));
    let options = CommitOptions {
        committed_unix: 1_750_000_000 + generation,
        config_digest: 7,
        catalog_digest: 9,
    };
    ledger.commit(&snapshot, &options).expect("commit generation");
}

/// Reads one full response from `stream` into `buf`, returning its
/// body and draining the consumed bytes.
fn read_one_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> String {
    loop {
        let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n");
        if let Some(end) = head_end {
            let head = String::from_utf8_lossy(&buf[..end]).into_owned();
            assert!(head.starts_with("HTTP/1.1 200 OK\r\n"), "non-200 mid-torture:\n{head}");
            let length: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .expect("Content-Length")
                .trim()
                .parse()
                .expect("numeric length");
            if buf.len() >= end + 4 + length {
                let body = String::from_utf8_lossy(&buf[end + 4..end + 4 + length]).into_owned();
                buf.drain(..end + 4 + length);
                return body;
            }
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => panic!("connection closed mid-response: a request was dropped"),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("read failed: {e}"),
        }
    }
}

fn scratch_dir() -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("arest-ledger-serve-torture-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn a_serial_committed_mid_session_swaps_in_without_dropping_a_request() {
    let dir = scratch_dir();
    let ledger = Arc::new(Ledger::open(&dir).expect("open ledger"));
    commit_generation(&ledger, 1);

    // The exact bodies each committed snapshot serves: the serving
    // store is rebuilt from the loaded snapshot, so expectations go
    // through the same load path.
    let body_of = |serial: u64| {
        store_from_snapshot(&ledger.load(serial).expect("load").snapshot).summary_json().render()
    };
    let body_v1 = body_of(1);

    let registry = arest_obs::Registry::new();
    let mut server = Server::bind("127.0.0.1:0", Arc::new(generation_store(1)), &registry, Some(2))
        .expect("bind");
    server.attach_ledger(Arc::clone(&ledger));
    let cell = server.store_cell();
    assert_eq!(refresh(&cell, &ledger).expect("initial refresh"), Some(1));

    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let stop = arest_conc::atomic::AtomicBool::new(false);

    arest_conc::thread::scope(|s| {
        let runner = s.spawn(|| server.run());
        let watcher = s.spawn(|| {
            watch(&cell, &ledger, Duration::from_millis(2), &|| {
                stop.load(arest_conc::atomic::Ordering::SeqCst)
            });
        });

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let mut buf = Vec::new();
        let request = b"GET /api/summary HTTP/1.1\r\nHost: t\r\n\r\n";

        // Warm the keep-alive session on generation 1.
        for round in 0..20 {
            stream.write_all(request).expect("write request");
            let body = read_one_response(&mut stream, &mut buf);
            assert_eq!(body, body_v1, "pre-swap round {round} served a foreign body");
        }

        // A new campaign lands mid-session…
        commit_generation(&ledger, 2);
        let body_v2 = body_of(2);
        assert_ne!(body_v1, body_v2, "the two generations must be distinguishable");

        // …and every subsequent response is byte-for-byte one of the
        // two committed snapshots — never a torn mixture — until the
        // watcher swaps and the new serial takes over.
        let mut saw_new = false;
        for round in 0..500 {
            stream.write_all(request).expect("write request");
            let body = read_one_response(&mut stream, &mut buf);
            assert!(
                body == body_v1 || body == body_v2,
                "round {round} served a torn body:\n{body}"
            );
            if body == body_v2 {
                saw_new = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(saw_new, "the watcher never swapped in serial 2");

        // The same connection's /status now reports the new serial.
        stream.write_all(b"GET /status HTTP/1.1\r\nHost: t\r\n\r\n").expect("write status request");
        let status = read_one_response(&mut stream, &mut buf);
        assert!(status.contains("\"serial\": 2"), "status after swap:\n{status}");
        assert!(status.contains("\"runs_behind_latest\": 0"), "status after swap:\n{status}");

        stop.store(true, arest_conc::atomic::Ordering::SeqCst);
        watcher.join().expect("watcher thread");
        handle.shutdown();
        runner.join().expect("server thread");
    });

    std::fs::remove_dir_all(&dir).expect("cleanup");
}
