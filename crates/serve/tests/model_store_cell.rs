//! Exhaustive model check of the atomic store swap
//! (`cargo test -p arest-serve --features model-check --test model_store_cell`).
//!
//! The zero-downtime refresh protocol (`DESIGN.md` §13) rests on two
//! invariants: a reader never observes a **torn** version (a store
//! from one serial under another serial's stamp), and concurrent
//! swaps resolve to the **newest** serial no matter how they
//! interleave. Each version here encodes its serial inside the store
//! itself (`summary.ases`), so any tearing of stamp against store is
//! directly observable.

#![cfg(feature = "model-check")]

use arest_conc::model::Model;
use arest_serve::store::{Store, SummaryInfo};
use arest_serve::{LedgerStamp, StoreCell, StoreVersion};
use std::sync::Arc;

/// A version whose store agrees with its stamp: `summary.ases` IS the
/// serial, so a torn pairing is visible to the reader.
fn version(serial: u64) -> StoreVersion {
    let summary = SummaryInfo { ases: serial, ..SummaryInfo::default() };
    StoreVersion {
        store: Arc::new(Store::new(Vec::new(), Vec::new(), summary)),
        stamp: Some(LedgerStamp {
            serial,
            payload_digest: serial.wrapping_mul(0x9e37_79b9),
            committed_unix: 1_750_000_000 + serial,
            origin: None,
        }),
    }
}

fn observed_serial(v: &StoreVersion) -> u64 {
    let stamp = v.stamp.expect("stamped version");
    assert_eq!(
        stamp.serial,
        v.store.summary().ases,
        "torn version: stamp from one serial, store from another"
    );
    stamp.serial
}

/// Invariant: a reader racing two committing watchers always loads an
/// internally consistent version, and the cell converges on the
/// newest serial under every interleaving.
#[test]
fn model_concurrent_swaps_never_tear_a_reader() {
    let report = Model::default().check(|| {
        let cell = StoreCell::new(version(1));
        arest_conc::thread::scope(|s| {
            let swap2 = s.spawn(|| cell.swap(version(2)));
            let swap3 = s.spawn(|| cell.swap(version(3)));
            // The reader races both swaps: whatever it sees must be
            // whole and monotonically plausible.
            let seen = observed_serial(&cell.load());
            assert!(
                (1..=3).contains(&seen),
                "reader saw serial {seen}, outside every committed version"
            );
            let two = swap2.join().expect("swap 2");
            let three = swap3.join().expect("swap 3");
            assert!(three || !two, "serial 3 can only lose to a newer serial, and none exists");
            assert_eq!(observed_serial(&cell.load()), 3, "the cell converges on the tip");
        });
    });
    assert!(report.complete, "schedule space not exhausted in {} runs", report.runs);
}

/// Invariant: a version loaded before a racing swap stays valid and
/// unchanged for as long as the request holds it — the swap replaces
/// the cell's pointer, never the loaded data.
#[test]
fn model_inflight_requests_keep_their_version_across_a_swap() {
    let report = Model::default().check(|| {
        let cell = StoreCell::new(version(1));
        arest_conc::thread::scope(|s| {
            let swapper = s.spawn(|| cell.swap(version(2)));
            let pinned = cell.load();
            let pinned_serial = observed_serial(&pinned);
            assert!(swapper.join().expect("swapper"), "serial 2 always beats serial 1");
            // However the load and swap interleaved, the pinned Arc
            // still reads as the version it was at load time…
            assert_eq!(observed_serial(&pinned), pinned_serial);
            // …while the cell itself has moved on.
            assert_eq!(observed_serial(&cell.load()), 2);
        });
    });
    assert!(report.complete, "schedule space not exhausted in {} runs", report.runs);
}
