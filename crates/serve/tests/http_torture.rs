//! End-to-end torture of the HTTP layer against a real in-process
//! server: split reads, keep-alive pipelines, oversized inputs, bad
//! methods, traversal attempts, and graceful-shutdown semantics.
//!
//! Each test binds its own server on an ephemeral loopback port and
//! runs it on an `arest_conc::thread::scope` thread, so the whole
//! suite parallelizes without port clashes.

use arest_serve::load::one_shot;
use arest_serve::store::{AddrRecord, AsSummary, Detection, ProvenanceInfo, SummaryInfo};
use arest_serve::{FlagCounts, Server, ShutdownHandle, Store};
use std::io::{Read as _, Write as _};
use std::net::{Ipv4Addr, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A two-AS, one-address store, built from the public constructors.
fn fixture() -> Arc<Store> {
    let mut flags = FlagCounts::default();
    flags.add("CVR");
    let ases = vec![
        AsSummary {
            id: 1,
            asn: 64512,
            name: "Test Net".to_string(),
            astype: "Stub".to_string(),
            confirmation: "none".to_string(),
            analyzed: true,
            targets_probed: 8,
            traces: 5,
            addresses: 3,
            fingerprinted: 1,
            flags,
        },
        AsSummary {
            id: 2,
            asn: 64513,
            name: "Quiet Net".to_string(),
            astype: "Transit".to_string(),
            confirmation: "survey".to_string(),
            analyzed: false,
            targets_probed: 8,
            traces: 0,
            addresses: 0,
            fingerprinted: 0,
            flags: FlagCounts::default(),
        },
    ];
    let addr = AddrRecord {
        addr: Ipv4Addr::new(10, 0, 0, 1),
        asn: 64512,
        as_name: "Test Net".to_string(),
        fingerprint: Some("Cisco".to_string()),
        fingerprint_source: Some("snmp".to_string()),
        detections: vec![Detection {
            asn: 64512,
            vp: "vp00".to_string(),
            dst: "10.0.0.9".to_string(),
            flag: "CVR".to_string(),
            stars: 5,
            start: 1,
            end: 3,
            label: 16001,
            suffix_based: false,
            provenance: ProvenanceInfo {
                trigger_hop: 1,
                run_len: 3,
                distinct_addrs: 3,
                lses_consulted: 3,
                effective_depth: 1,
                fingerprint: Some("Cisco".to_string()),
                label_in_vendor_range: true,
                suffix_matched: false,
                chain: "trigger_hop=1 run_len=3".to_string(),
            },
        }],
    };
    let summary = SummaryInfo {
        ases: 2,
        analyzed: 1,
        sr_deployed: 1,
        addresses: 3,
        fingerprinted: 1,
        raw_traces: 40,
        intra_as_traces: 5,
        vantage_points: 4,
        flags,
    };
    Arc::new(Store::new(ases, vec![addr], summary))
}

/// Binds a fresh server, runs it on a scope thread, hands the test
/// body the address and a shutdown handle, then drains.
fn with_server(body: impl FnOnce(SocketAddr, &ShutdownHandle)) {
    let registry = arest_obs::Registry::new();
    let server = Server::bind("127.0.0.1:0", fixture(), &registry, Some(2)).expect("bind");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    arest_conc::thread::scope(|s| {
        let runner = s.spawn(|| server.run());
        body(addr, &handle);
        handle.shutdown();
        runner.join().expect("server thread");
    });
}

fn get(addr: SocketAddr, target: &str) -> (u16, String, String) {
    let raw = format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    one_shot(addr, raw.as_bytes()).expect("response")
}

#[test]
fn all_five_routes_answer_200() {
    with_server(|addr, _| {
        for target in ["/api/summary", "/api/as/64512", "/api/addr/10.0.0.1", "/metrics", "/status"]
        {
            let (status, head, body) = get(addr, target);
            assert_eq!(status, 200, "{target}:\n{body}");
            assert!(head.contains("Content-Length:"), "{target} head:\n{head}");
            assert!(!body.is_empty(), "{target} has a body");
        }
    });
}

#[test]
fn a_request_arriving_one_byte_at_a_time_still_parses() {
    with_server(|addr, _| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let raw = b"GET /status HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
        for &byte in raw {
            stream.write_all(&[byte]).expect("write byte");
            stream.flush().expect("flush");
        }
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "got:\n{response}");
        assert!(response.contains("\"service\": \"arest-serve\""));
    });
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    with_server(|addr, _| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let mut buf = Vec::new();
        for round in 0..3 {
            stream
                .write_all(b"GET /api/as/64512 HTTP/1.1\r\nHost: t\r\n\r\n")
                .expect("write request");
            // Read until this round's body is complete.
            let body = read_one_response(&mut stream, &mut buf);
            assert!(body.contains("\"asn\": 64512"), "round {round}:\n{body}");
        }
    });
}

/// Reads one full response from `stream` into `buf`, returning its
/// body and draining the consumed bytes.
fn read_one_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> String {
    loop {
        let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n");
        if let Some(end) = head_end {
            let head = String::from_utf8_lossy(&buf[..end]).into_owned();
            let length: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .expect("Content-Length")
                .trim()
                .parse()
                .expect("numeric length");
            if buf.len() >= end + 4 + length {
                let body = String::from_utf8_lossy(&buf[end + 4..end + 4 + length]).into_owned();
                buf.drain(..end + 4 + length);
                return body;
            }
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => panic!("connection closed mid-response"),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("read failed: {e}"),
        }
    }
}

#[test]
fn the_error_matrix_maps_statuses() {
    with_server(|addr, _| {
        // (request line or full head, expected status)
        let cases: Vec<(String, u16)> = vec![
            // Bad method token / unsupported methods.
            ("POST /status HTTP/1.1\r\nHost: t\r\n\r\n".to_string(), 405),
            ("DELETE /status HTTP/1.1\r\nHost: t\r\n\r\n".to_string(), 405),
            // Garbage request lines.
            ("nonsense\r\n\r\n".to_string(), 400),
            ("GET /status\r\n\r\n".to_string(), 400),
            ("GET /status HTTP/2.0\r\nHost: t\r\n\r\n".to_string(), 400),
            ("GET status HTTP/1.1\r\nHost: t\r\n\r\n".to_string(), 400),
            // Bodies are rejected: this is a read-only GET API.
            ("GET /status HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello".to_string(), 400),
            ("GET /status HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_string(), 400),
            // Overlong target.
            (format!("GET /{} HTTP/1.1\r\nHost: t\r\n\r\n", "a".repeat(4000)), 414),
            // Oversized header block.
            (format!("GET /status HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "b".repeat(9000)), 431),
            // Route exists, parameter does not parse.
            ("GET /api/as/AS64512 HTTP/1.1\r\nHost: t\r\n\r\n".to_string(), 422),
            ("GET /api/as/99999999999 HTTP/1.1\r\nHost: t\r\n\r\n".to_string(), 422),
            ("GET /api/addr/not-an-ip HTTP/1.1\r\nHost: t\r\n\r\n".to_string(), 422),
            ("GET /api/addr/10.0.0.999 HTTP/1.1\r\nHost: t\r\n\r\n".to_string(), 422),
            // Traversal attempts die in routing, not the filesystem.
            ("GET /api/addr/../../etc/passwd HTTP/1.1\r\nHost: t\r\n\r\n".to_string(), 422),
            ("GET /./status HTTP/1.1\r\nHost: t\r\n\r\n".to_string(), 422),
            // Unknown shapes.
            ("GET /nope HTTP/1.1\r\nHost: t\r\n\r\n".to_string(), 404),
            ("GET /api/as HTTP/1.1\r\nHost: t\r\n\r\n".to_string(), 404),
            ("GET /status/ HTTP/1.1\r\nHost: t\r\n\r\n".to_string(), 404),
            // Present route, absent data.
            ("GET /api/as/65000 HTTP/1.1\r\nHost: t\r\n\r\n".to_string(), 404),
            ("GET /api/addr/10.9.9.9 HTTP/1.1\r\nHost: t\r\n\r\n".to_string(), 404),
        ];
        for (raw, expected) in cases {
            let (status, head, body) = one_shot(addr, raw.as_bytes()).expect("response");
            let line = raw.lines().next().unwrap_or("").to_string();
            assert_eq!(status, expected, "{line}:\n{body}");
            if expected != 200 {
                assert!(body.contains("\"error\""), "{line} error body:\n{body}");
            }
            if expected == 405 {
                assert!(head.contains("Allow: GET"), "{line} head:\n{head}");
            }
        }
    });
}

#[test]
fn query_strings_are_ignored() {
    with_server(|addr, _| {
        let (status, _, body) = get(addr, "/api/as/64512?pretty=1&x=2");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"asn\": 64512"));
    });
}

#[test]
fn graceful_shutdown_drains_and_refuses_new_connections() {
    with_server(|addr, handle| {
        // A request in flight when shutdown lands still completes…
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        stream.write_all(b"GET /api/summary HTTP/1.1\r\nHost: t\r\n\r\n").expect("write");
        let mut buf = Vec::new();
        let body = read_one_response(&mut stream, &mut buf);
        assert!(body.contains("\"ases\": 2"));
        handle.shutdown();
        // …the idle keep-alive connection closes at the boundary…
        let mut rest = Vec::new();
        let closed = stream.read_to_end(&mut rest).map_or(true, |n| n == 0);
        assert!(closed, "idle connection closes after shutdown");
        // …and fresh connections are no longer served.
        if let Ok(mut late) = TcpStream::connect(addr) {
            late.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
            let _ = late.write_all(b"GET /status HTTP/1.1\r\nHost: t\r\n\r\n");
            let mut out = Vec::new();
            let n = late.read_to_end(&mut out).unwrap_or(0);
            assert_eq!(n, 0, "post-shutdown connection must not be served");
        }
    });
}

#[test]
fn metrics_report_served_requests() {
    with_server(|addr, _| {
        let (status, _, _) = get(addr, "/api/summary");
        assert_eq!(status, 200);
        let (status, _, metrics) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(
            metrics.contains("serve_http_requests_summary 1"),
            "per-endpoint counter:\n{metrics}"
        );
        assert!(metrics.contains("# TYPE serve_http_latency_us_summary histogram"));
        assert!(metrics.contains("serve_http_responses_200"));
    });
}
