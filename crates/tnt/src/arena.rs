//! Columnar (struct-of-arrays) trace storage.
//!
//! The nested [`Trace`] → [`Hop`] → `Option<Arc<LabelStack>>` shape is
//! convenient to build during a campaign, but every hot consumer —
//! address collection, TTL fingerprinting, the five-flag scan — walks
//! it as three pointer hops and an `Option` branch per LSE. At catalog
//! scale that pointer chasing dominates the scan itself.
//!
//! [`TraceArena`] stores the same data as flat parallel columns:
//!
//! ```text
//! per trace   vps srcs dsts reached        hop_off (len = traces+1)
//! per hop     ttls addrs+valid rtts+valid qttls+valid reply_ttls+valid
//!             revealed is_destination has_stack      lse_off (len = hops+1)
//! per LSE     lses (every stack flattened, top entry first)
//! ```
//!
//! Trace `t` owns hops `hop_off[t]..hop_off[t+1]`; hop `h` owns LSEs
//! `lse_off[h]..lse_off[h+1]`. Optional columns pack their values
//! densely and mark presence in a [`Bitmap`]; an unset bit means the
//! aligned slot holds an unspecified placeholder. `has_stack`
//! distinguishes "no stack quoted" from "a quoted but empty stack", so
//! the conversion is lossless in both directions — proven by the
//! round-trip tests here and the property test in
//! `tests/arena_roundtrip.rs`.
//!
//! [`TraceView`]/[`HopView`] are zero-copy index handles mirroring the
//! nested accessors, and [`TraceArena::restrict`] performs the
//! pipeline's AS-restriction compaction (span cut + consecutive
//! duplicate-address collapse) column to column without materializing
//! nested traces in between.

use crate::trace::{Hop, Trace};
use arest_wire::bitmap::Bitmap;
use arest_wire::mpls::{Label, LabelStack, Lse};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Placeholder stored in invalid slots of optional columns. Never
/// observable: every read is gated on the column's validity bitmap.
const NO_ADDR: Ipv4Addr = Ipv4Addr::UNSPECIFIED;

/// A set of traces in columnar (struct-of-arrays) layout.
///
/// Build one with [`TraceArena::from_traces`] (or push restricted
/// copies with [`TraceArena::restrict`]), read it through
/// [`TraceView`]/[`HopView`], and materialize nested traces back with
/// [`TraceArena::to_traces`] when an owner API needs them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceArena {
    vps: Vec<Arc<str>>,
    srcs: Vec<Ipv4Addr>,
    dsts: Vec<Ipv4Addr>,
    reached: Bitmap,
    /// Hop range of trace `t`: `hop_off[t]..hop_off[t+1]`.
    hop_off: Vec<u32>,
    ttls: Vec<u8>,
    addrs: Vec<Ipv4Addr>,
    addr_valid: Bitmap,
    rtts: Vec<u32>,
    rtt_valid: Bitmap,
    qttls: Vec<u8>,
    qttl_valid: Bitmap,
    reply_ttls: Vec<u8>,
    reply_valid: Bitmap,
    revealed: Bitmap,
    is_destination: Bitmap,
    has_stack: Bitmap,
    /// LSE range of hop `h`: `lse_off[h]..lse_off[h+1]` (empty when
    /// `has_stack` is unset *or* the quoted stack itself was empty).
    lse_off: Vec<u32>,
    lses: Vec<Lse>,
}

impl TraceArena {
    /// An empty arena.
    pub fn new() -> TraceArena {
        TraceArena { hop_off: vec![0], lse_off: vec![0], ..TraceArena::default() }
    }

    /// Converts nested traces into columns. Lossless: `to_traces`
    /// reproduces the input value for value (stack `Arc`s are rebuilt,
    /// not shared).
    pub fn from_traces(traces: &[Trace]) -> TraceArena {
        let hops: usize = traces.iter().map(|t| t.hops.len()).sum();
        let lses: usize =
            traces.iter().map(|t| t.hops.iter().map(Hop::stack_depth).sum::<usize>()).sum();
        let mut arena = TraceArena {
            vps: Vec::with_capacity(traces.len()),
            srcs: Vec::with_capacity(traces.len()),
            dsts: Vec::with_capacity(traces.len()),
            reached: Bitmap::with_capacity(traces.len()),
            hop_off: Vec::with_capacity(traces.len() + 1),
            ttls: Vec::with_capacity(hops),
            addrs: Vec::with_capacity(hops),
            addr_valid: Bitmap::with_capacity(hops),
            rtts: Vec::with_capacity(hops),
            rtt_valid: Bitmap::with_capacity(hops),
            qttls: Vec::with_capacity(hops),
            qttl_valid: Bitmap::with_capacity(hops),
            reply_ttls: Vec::with_capacity(hops),
            reply_valid: Bitmap::with_capacity(hops),
            revealed: Bitmap::with_capacity(hops),
            is_destination: Bitmap::with_capacity(hops),
            has_stack: Bitmap::with_capacity(hops),
            lse_off: Vec::with_capacity(hops + 1),
            lses: Vec::with_capacity(lses),
        };
        arena.hop_off.push(0);
        arena.lse_off.push(0);
        for trace in traces {
            arena.begin_trace(trace.vp.clone(), trace.src, trace.dst, trace.reached);
            for hop in &trace.hops {
                arena.push_hop(hop);
            }
            arena.finish_trace();
        }
        arena
    }

    /// Materializes the columns back into nested traces.
    pub fn to_traces(&self) -> Vec<Trace> {
        (0..self.len())
            .map(|t| {
                let view = self.trace(t);
                Trace {
                    vp: view.vp().clone(),
                    src: view.src(),
                    dst: view.dst(),
                    hops: view.hops().map(|h| h.to_hop()).collect(),
                    reached: view.reached(),
                }
            })
            .collect()
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.vps.len()
    }

    /// Whether the arena holds no traces.
    pub fn is_empty(&self) -> bool {
        self.vps.is_empty()
    }

    /// Total number of hops across all traces.
    pub fn hop_count(&self) -> usize {
        self.ttls.len()
    }

    /// Total number of flattened LSEs across all quoted stacks.
    pub fn lse_count(&self) -> usize {
        self.lses.len()
    }

    /// View of trace `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= len()`.
    pub fn trace(&self, index: usize) -> TraceView<'_> {
        assert!(index < self.len(), "trace index {index} out of range (len {})", self.len());
        TraceView { arena: self, index }
    }

    /// Iterates over all traces in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = TraceView<'_>> {
        (0..self.len()).map(|index| TraceView { arena: self, index })
    }

    /// Columnar address collection: every hop address that came with a
    /// reply IP TTL, sorted and deduplicated, aligned with its
    /// first-seen time-exceeded reply TTL. Same contract as
    /// [`crate::trace::collect_addrs`], but hash-free: one branch-light
    /// gather over two columns and two bitmaps, then a stable sort on
    /// the address. Stability keeps equal addresses in hop order, so
    /// `dedup` keeps the first-seen TE TTL — the same winner as the
    /// nested path's first `HashMap` insertion. The TE TTLs come back
    /// as an aligned slice, so downstream batches never re-hash per
    /// address.
    pub fn collect_addrs(&self) -> (Vec<Ipv4Addr>, Vec<u8>) {
        let hops = self.hop_count();
        let mut pairs: Vec<(Ipv4Addr, u8)> = Vec::with_capacity(hops);
        for h in 0..hops {
            if self.addr_valid.get(h) && self.reply_valid.get(h) {
                pairs.push((self.addrs[h], self.reply_ttls[h]));
            }
        }
        pairs.sort_by_key(|&(addr, _)| addr);
        pairs.dedup_by_key(|&mut (addr, _)| addr);
        pairs.into_iter().unzip()
    }

    /// Appends a restricted copy of trace `index` keeping the
    /// inclusive hop span `first..=last` and collapsing consecutive
    /// hops that repeat the same address (the first of each run wins,
    /// silent hops break runs) — column for column, the compaction the
    /// pipeline's AS restriction performs on nested hops. Returns the
    /// new trace's index in `self`.
    pub fn push_restricted(
        &mut self,
        src: &TraceArena,
        index: usize,
        first: usize,
        last: usize,
    ) -> usize {
        let view = src.trace(index);
        assert!(first <= last && last < view.hop_count(), "invalid hop span {first}..={last}");
        self.begin_trace(view.vp().clone(), view.src(), view.dst(), view.reached());
        let mut prev_addr: Option<Ipv4Addr> = None;
        for j in first..=last {
            let hop = view.hop(j);
            let addr = hop.addr();
            if j > first && addr.is_some() && addr == prev_addr {
                continue;
            }
            prev_addr = addr;
            self.push_hop_view(&hop);
        }
        self.finish_trace()
    }

    /// Restriction over a whole arena: `span_of` returns the inclusive
    /// hop span to keep for each trace (`None` drops the trace), and
    /// every kept trace is compacted via [`TraceArena::push_restricted`].
    pub fn restrict<F>(&self, mut span_of: F) -> TraceArena
    where
        F: FnMut(TraceView<'_>) -> Option<(usize, usize)>,
    {
        let mut out = TraceArena::new();
        for view in self.iter() {
            if let Some((first, last)) = span_of(view) {
                out.push_restricted(self, view.index, first, last);
            }
        }
        out
    }

    fn begin_trace(&mut self, vp: Arc<str>, src: Ipv4Addr, dst: Ipv4Addr, reached: bool) {
        self.vps.push(vp);
        self.srcs.push(src);
        self.dsts.push(dst);
        self.reached.push(reached);
    }

    fn finish_trace(&mut self) -> usize {
        let hops = u32::try_from(self.ttls.len()).expect("hop count fits u32");
        self.hop_off.push(hops);
        self.len() - 1
    }

    fn push_hop(&mut self, hop: &Hop) {
        self.push_hop_parts(
            hop.ttl,
            hop.addr,
            hop.rtt_us,
            hop.quoted_ip_ttl,
            hop.reply_ip_ttl,
            hop.revealed,
            hop.is_destination,
            hop.stack.as_deref().map(LabelStack::entries),
        );
    }

    fn push_hop_view(&mut self, hop: &HopView<'_>) {
        self.push_hop_parts(
            hop.ttl(),
            hop.addr(),
            hop.rtt_us(),
            hop.quoted_ip_ttl(),
            hop.reply_ip_ttl(),
            hop.revealed(),
            hop.is_destination(),
            hop.lses(),
        );
    }

    #[allow(clippy::too_many_arguments)] // private column-push primitive
    fn push_hop_parts(
        &mut self,
        ttl: u8,
        addr: Option<Ipv4Addr>,
        rtt_us: Option<u32>,
        quoted_ip_ttl: Option<u8>,
        reply_ip_ttl: Option<u8>,
        revealed: bool,
        is_destination: bool,
        stack: Option<&[Lse]>,
    ) {
        self.ttls.push(ttl);
        self.addr_valid.push(addr.is_some());
        self.addrs.push(addr.unwrap_or(NO_ADDR));
        self.rtt_valid.push(rtt_us.is_some());
        self.rtts.push(rtt_us.unwrap_or(0));
        self.qttl_valid.push(quoted_ip_ttl.is_some());
        self.qttls.push(quoted_ip_ttl.unwrap_or(0));
        self.reply_valid.push(reply_ip_ttl.is_some());
        self.reply_ttls.push(reply_ip_ttl.unwrap_or(0));
        self.revealed.push(revealed);
        self.is_destination.push(is_destination);
        self.has_stack.push(stack.is_some());
        self.lses.extend_from_slice(stack.unwrap_or(&[]));
        let lses = u32::try_from(self.lses.len()).expect("LSE count fits u32");
        self.lse_off.push(lses);
    }
}

/// Zero-copy view of one trace inside a [`TraceArena`].
#[derive(Debug, Clone, Copy)]
pub struct TraceView<'a> {
    arena: &'a TraceArena,
    index: usize,
}

impl<'a> TraceView<'a> {
    /// Index of this trace within its arena.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Vantage-point name (interned, shared with the nested traces).
    pub fn vp(&self) -> &'a Arc<str> {
        &self.arena.vps[self.index]
    }

    /// Probe source address.
    pub fn src(&self) -> Ipv4Addr {
        self.arena.srcs[self.index]
    }

    /// Probe destination address.
    pub fn dst(&self) -> Ipv4Addr {
        self.arena.dsts[self.index]
    }

    /// Whether the destination answered.
    pub fn reached(&self) -> bool {
        self.arena.reached.get(self.index)
    }

    /// Number of hops in this trace.
    pub fn hop_count(&self) -> usize {
        (self.arena.hop_off[self.index + 1] - self.arena.hop_off[self.index]) as usize
    }

    /// View of hop `index` (trace-relative).
    ///
    /// # Panics
    ///
    /// Panics when `index >= hop_count()`.
    pub fn hop(&self, index: usize) -> HopView<'a> {
        assert!(index < self.hop_count(), "hop index {index} out of range");
        HopView { arena: self.arena, hop: self.arena.hop_off[self.index] as usize + index }
    }

    /// Iterates over this trace's hops in path order.
    pub fn hops(&self) -> impl Iterator<Item = HopView<'a>> + '_ {
        let start = self.arena.hop_off[self.index] as usize;
        let end = self.arena.hop_off[self.index + 1] as usize;
        let arena = self.arena;
        (start..end).map(move |hop| HopView { arena, hop })
    }

    /// Addresses that replied, in path order (mirror of
    /// [`Trace::responding_addrs`]).
    pub fn responding_addrs(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.hops().filter_map(|h| h.addr())
    }
}

/// Zero-copy view of one hop inside a [`TraceArena`].
#[derive(Debug, Clone, Copy)]
pub struct HopView<'a> {
    arena: &'a TraceArena,
    hop: usize,
}

impl<'a> HopView<'a> {
    /// The probe TTL this hop answered.
    pub fn ttl(&self) -> u8 {
        self.arena.ttls[self.hop]
    }

    /// The replying address, `None` for a silent hop.
    pub fn addr(&self) -> Option<Ipv4Addr> {
        self.arena.addr_valid.get(self.hop).then(|| self.arena.addrs[self.hop])
    }

    /// Round-trip time in microseconds, when a reply arrived.
    pub fn rtt_us(&self) -> Option<u32> {
        self.arena.rtt_valid.get(self.hop).then(|| self.arena.rtts[self.hop])
    }

    /// The quoted IP TTL (qTTL), when present.
    pub fn quoted_ip_ttl(&self) -> Option<u8> {
        self.arena.qttl_valid.get(self.hop).then(|| self.arena.qttls[self.hop])
    }

    /// The reply's own IP TTL, when present.
    pub fn reply_ip_ttl(&self) -> Option<u8> {
        self.arena.reply_valid.get(self.hop).then(|| self.arena.reply_ttls[self.hop])
    }

    /// Whether TNT inserted this hop through revelation.
    pub fn revealed(&self) -> bool {
        self.arena.revealed.get(self.hop)
    }

    /// Whether this hop is the probe destination.
    pub fn is_destination(&self) -> bool {
        self.arena.is_destination.get(self.hop)
    }

    /// Whether the hop replied at all (mirror of [`Hop::responded`]).
    pub fn responded(&self) -> bool {
        self.arena.addr_valid.get(self.hop)
    }

    /// Whether a label stack was quoted (even an empty one).
    pub fn has_stack(&self) -> bool {
        self.arena.has_stack.get(self.hop)
    }

    /// The quoted LSEs, top entry first; `None` when no stack was
    /// quoted (distinct from `Some(&[])`, a quoted empty stack).
    pub fn lses(&self) -> Option<&'a [Lse]> {
        self.has_stack().then(|| {
            let start = self.arena.lse_off[self.hop] as usize;
            let end = self.arena.lse_off[self.hop + 1] as usize;
            &self.arena.lses[start..end]
        })
    }

    /// Depth of the quoted stack, 0 when none (mirror of
    /// [`Hop::stack_depth`]).
    pub fn stack_depth(&self) -> usize {
        (self.arena.lse_off[self.hop + 1] - self.arena.lse_off[self.hop]) as usize
    }

    /// The top (active) label, if a non-empty stack was quoted.
    pub fn top_label(&self) -> Option<Label> {
        self.lses().and_then(<[Lse]>::first).map(|lse| lse.label)
    }

    /// Materializes this hop back into the nested representation.
    pub fn to_hop(&self) -> Hop {
        Hop {
            ttl: self.ttl(),
            addr: self.addr(),
            rtt_us: self.rtt_us(),
            stack: self.lses().map(|lses| Arc::new(LabelStack::from_entries(lses.to_vec()))),
            quoted_ip_ttl: self.quoted_ip_ttl(),
            reply_ip_ttl: self.reply_ip_ttl(),
            revealed: self.revealed(),
            is_destination: self.is_destination(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::collect_addrs;
    use arest_wire::mpls::Label;

    fn labeled_hop(ttl: u8, last: u8, labels: &[u32]) -> Hop {
        let labels: Vec<Label> = labels.iter().map(|&v| Label::new(v).unwrap()).collect();
        Hop {
            ttl,
            addr: Some(Ipv4Addr::new(10, 0, 0, last)),
            rtt_us: Some(u32::from(ttl) * 130),
            stack: Some(Arc::new(LabelStack::from_labels(&labels, 252))),
            quoted_ip_ttl: Some(1),
            reply_ip_ttl: Some(250),
            revealed: false,
            is_destination: false,
        }
    }

    fn sample_traces() -> Vec<Trace> {
        let mut revealed = labeled_hop(3, 7, &[]);
        revealed.stack = None;
        revealed.revealed = true;
        let mut dest = labeled_hop(5, 9, &[]);
        dest.stack = None;
        dest.is_destination = true;
        dest.reply_ip_ttl = None;
        let mut empty_stack = labeled_hop(2, 4, &[]);
        empty_stack.rtt_us = None;
        vec![
            Trace {
                vp: "vp0".into(),
                src: Ipv4Addr::new(192, 0, 2, 1),
                dst: Ipv4Addr::new(203, 0, 113, 1),
                hops: vec![
                    labeled_hop(1, 1, &[16_005]),
                    empty_stack,
                    revealed,
                    Hop::silent(4),
                    dest,
                ],
                reached: true,
            },
            Trace {
                vp: "vp1".into(),
                src: Ipv4Addr::new(192, 0, 2, 2),
                dst: Ipv4Addr::new(203, 0, 113, 2),
                hops: vec![labeled_hop(1, 1, &[16_005, 7, 24_001])],
                reached: false,
            },
            Trace {
                vp: "vp0".into(),
                src: Ipv4Addr::new(192, 0, 2, 1),
                dst: Ipv4Addr::new(203, 0, 113, 3),
                hops: vec![],
                reached: false,
            },
        ]
    }

    #[test]
    fn round_trip_is_lossless() {
        let traces = sample_traces();
        let arena = TraceArena::from_traces(&traces);
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.hop_count(), 6);
        assert_eq!(arena.lse_count(), 4);
        assert_eq!(arena.to_traces(), traces);
    }

    #[test]
    fn views_mirror_nested_accessors() {
        let traces = sample_traces();
        let arena = TraceArena::from_traces(&traces);
        for (t, trace) in traces.iter().enumerate() {
            let view = arena.trace(t);
            assert_eq!(view.vp(), &trace.vp);
            assert_eq!(view.dst(), trace.dst);
            assert_eq!(view.reached(), trace.reached);
            assert_eq!(view.hop_count(), trace.hops.len());
            assert_eq!(
                view.responding_addrs().collect::<Vec<_>>(),
                trace.responding_addrs().collect::<Vec<_>>()
            );
            for (j, hop) in trace.hops.iter().enumerate() {
                let hv = view.hop(j);
                assert_eq!(hv.addr(), hop.addr);
                assert_eq!(hv.responded(), hop.responded());
                assert_eq!(hv.stack_depth(), hop.stack_depth());
                assert_eq!(hv.has_stack(), hop.stack.is_some());
                assert_eq!(
                    hv.top_label(),
                    hop.stack.as_ref().and_then(|s| s.top()).map(|lse| lse.label)
                );
            }
        }
    }

    #[test]
    fn empty_arena_is_valid() {
        let arena = TraceArena::new();
        assert!(arena.is_empty());
        assert_eq!(arena.hop_count(), 0);
        assert_eq!(arena.lse_count(), 0);
        assert_eq!(arena.to_traces(), Vec::<Trace>::new());
        assert_eq!(arena.collect_addrs(), (Vec::new(), Vec::new()));
        assert_eq!(TraceArena::from_traces(&[]), arena);
        assert!(arena.restrict(|_| Some((0, 0))).is_empty());
    }

    #[test]
    fn collect_addrs_agrees_with_nested_helper() {
        let traces = sample_traces();
        let arena = TraceArena::from_traces(&traces);
        let (nested_addrs, nested_te) = collect_addrs(&traces);
        let (addrs, te) = arena.collect_addrs();
        assert_eq!(addrs, nested_addrs);
        let te_of: Vec<u8> = addrs.iter().map(|a| nested_te[a]).collect();
        assert_eq!(te, te_of, "aligned TE TTLs must match the map, first seen wins");
    }

    #[test]
    fn restrict_cuts_span_and_collapses_consecutive_duplicates() {
        let a = |last: u8| Some(Ipv4Addr::new(10, 0, 0, last));
        let hop = |ttl: u8, addr: Option<Ipv4Addr>| Hop { addr, ..Hop::silent(ttl) };
        let trace = Trace {
            vp: "vp".into(),
            src: Ipv4Addr::new(192, 0, 2, 1),
            dst: Ipv4Addr::new(203, 0, 113, 1),
            hops: vec![
                hop(1, a(99)), // cut by span
                hop(2, a(1)),
                hop(3, a(1)), // duplicate run → collapsed
                hop(4, None), // silent hop breaks the run
                hop(5, a(1)),
                hop(6, a(2)),
                hop(7, a(50)), // cut by span
            ],
            reached: true,
        };
        let arena = TraceArena::from_traces(std::slice::from_ref(&trace));
        let restricted = arena.restrict(|_| Some((1, 5)));

        // The nested oracle: the exact truncate + drain + dedup_by the
        // pipeline's restriction applies.
        let mut hops = trace.hops.clone();
        hops.truncate(6);
        hops.drain(..1);
        hops.dedup_by(|b, c| c.addr.is_some() && c.addr == b.addr);
        assert_eq!(restricted.trace(0).hop_count(), hops.len());
        assert_eq!(restricted.to_traces()[0].hops, hops);

        assert!(arena.restrict(|_| None).is_empty(), "None drops the trace");
    }
}
