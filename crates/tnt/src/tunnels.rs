//! Per-trace tunnel span classification.
//!
//! Groups a trace's hops into MPLS tunnel observations following the
//! Donnet et al. taxonomy (paper §2.2 / Appendix C):
//!
//! * runs of hops quoting LSEs → **explicit**; except a *single*
//!   labelled hop whose quoted LSE TTL is near 255, which is the
//!   signature of an **opaque** tunnel's ending hop (the LSE was
//!   pushed at 255 and survived almost intact);
//! * runs of hops TNT spliced in via revelation → **invisible**
//!   (or the interior of an opaque tunnel — the LSE-bearing EH right
//!   after the revealed run disambiguates);
//! * runs of unlabelled hops whose quoted IP TTL exceeds 1 →
//!   **implicit** (the ingress propagated the TTL but hops quote no
//!   LSE, so the quoted IP TTL grows along the tunnel).

use crate::trace::Trace;
use arest_mpls::visibility::TunnelType;

/// Quoted-LSE-TTL threshold above which a lone labelled hop is read
/// as an opaque tunnel's ending hop.
pub const OPAQUE_LSE_TTL_MIN: u8 = 200;

/// TNT's opaque-length inference: the LSE was pushed at 255 and each
/// LSR decremented it once, so the ending hop's quoted LSE TTL `q`
/// betrays `255 - q` hidden LSRs upstream of it.
pub fn opaque_hidden_lsrs(quoted_lse_ttl: u8) -> u8 {
    255u8.saturating_sub(quoted_lse_ttl)
}

/// One observed tunnel inside a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunnelObservation {
    /// Index of the first hop of the span in `trace.hops`.
    pub start: usize,
    /// Index of the last hop of the span (inclusive).
    pub end: usize,
    /// The inferred tunnel type.
    pub ttype: TunnelType,
    /// For opaque tunnels: TNT's inference of how many LSRs hide
    /// between the (invisible) ingress and the ending hop, derived
    /// from the quoted LSE TTL (`255 - qTTL`, since the LSE was
    /// pushed at 255 and decremented once per LSR).
    pub hidden_lsrs: Option<u8>,
}

impl TunnelObservation {
    /// Number of hops in the span.
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Spans are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Classifies the tunnel spans of a trace.
pub fn classify_tunnels(trace: &Trace) -> Vec<TunnelObservation> {
    #[derive(PartialEq, Clone, Copy)]
    enum Kind {
        Lse,
        Revealed,
        ImplicitQttl,
        Plain,
    }

    let kinds: Vec<Kind> = trace
        .hops
        .iter()
        .map(|h| {
            if h.revealed {
                Kind::Revealed
            } else if h.stack.is_some() {
                Kind::Lse
            } else if h.quoted_ip_ttl.is_some_and(|q| q > 1) {
                Kind::ImplicitQttl
            } else {
                Kind::Plain
            }
        })
        .collect();

    let mut spans = Vec::new();
    let mut i = 0;
    while i < kinds.len() {
        let kind = kinds[i];
        let mut j = i;
        while j + 1 < kinds.len() && kinds[j + 1] == kind {
            j += 1;
        }
        match kind {
            Kind::Lse => {
                let single = i == j;
                let opaque = single
                    && trace.hops[i]
                        .stack
                        .as_ref()
                        .and_then(|s| s.top().map(|lse| lse.ttl))
                        .is_some_and(|ttl| ttl >= OPAQUE_LSE_TTL_MIN);
                // A lone high-TTL LSE right after a revealed run is the
                // ending hop of that (opaque) tunnel: merge them below.
                let ttype = if opaque { TunnelType::Opaque } else { TunnelType::Explicit };
                let hidden_lsrs = opaque
                    .then(|| {
                        trace.hops[i]
                            .stack
                            .as_ref()
                            .and_then(|s| s.top())
                            .map(|lse| opaque_hidden_lsrs(lse.ttl))
                    })
                    .flatten();
                spans.push(TunnelObservation { start: i, end: j, ttype, hidden_lsrs });
            }
            Kind::Revealed => {
                spans.push(TunnelObservation {
                    start: i,
                    end: j,
                    ttype: TunnelType::Invisible,
                    hidden_lsrs: None,
                });
            }
            Kind::ImplicitQttl => {
                spans.push(TunnelObservation {
                    start: i,
                    end: j,
                    ttype: TunnelType::Implicit,
                    hidden_lsrs: None,
                });
            }
            Kind::Plain => {}
        }
        i = j + 1;
    }

    // Merge a revealed run followed by an opaque ending hop into one
    // opaque observation (the revelation exposed that tunnel's
    // interior).
    let mut merged: Vec<TunnelObservation> = Vec::with_capacity(spans.len());
    for span in spans {
        if let Some(last) = merged.last_mut() {
            if last.ttype == TunnelType::Invisible
                && span.ttype == TunnelType::Opaque
                && span.start == last.end + 1
            {
                last.end = span.end;
                last.ttype = TunnelType::Opaque;
                last.hidden_lsrs = span.hidden_lsrs;
                continue;
            }
        }
        merged.push(span);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Hop;
    use arest_wire::mpls::{Label, LabelStack};
    use std::net::Ipv4Addr;

    fn hop(ttl: u8) -> Hop {
        Hop {
            addr: Some(Ipv4Addr::new(10, 0, 0, ttl)),
            rtt_us: Some(1000),
            quoted_ip_ttl: Some(1),
            reply_ip_ttl: Some(250),
            ..Hop::silent(ttl)
        }
    }

    fn lse_hop(ttl: u8, label: u32, lse_ttl: u8) -> Hop {
        let mut h = hop(ttl);
        h.stack = Some(std::sync::Arc::new(LabelStack::from_labels(
            &[Label::new(label).unwrap()],
            lse_ttl,
        )));
        h
    }

    fn trace_of(hops: Vec<Hop>) -> Trace {
        Trace {
            vp: "t".into(),
            src: Ipv4Addr::new(192, 0, 2, 1),
            dst: Ipv4Addr::new(203, 0, 113, 1),
            hops,
            reached: true,
        }
    }

    #[test]
    fn explicit_run_is_one_span() {
        let t = trace_of(vec![
            hop(1),
            lse_hop(2, 16_005, 1),
            lse_hop(3, 16_005, 1),
            lse_hop(4, 16_005, 1),
            hop(5),
        ]);
        let spans = classify_tunnels(&t);
        assert_eq!(spans.len(), 1);
        assert_eq!((spans[0].start, spans[0].end), (1, 3));
        assert_eq!(spans[0].ttype, TunnelType::Explicit);
        assert_eq!(spans[0].len(), 3);
    }

    #[test]
    fn lone_high_ttl_lse_is_opaque_with_length_inference() {
        let t = trace_of(vec![hop(1), lse_hop(2, 30_001, 252), hop(3)]);
        let spans = classify_tunnels(&t);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].ttype, TunnelType::Opaque);
        // LSE pushed at 255, quoted 252 → three hidden LSRs.
        assert_eq!(spans[0].hidden_lsrs, Some(3));
        assert_eq!(opaque_hidden_lsrs(255), 0);
    }

    #[test]
    fn lone_low_ttl_lse_is_explicit() {
        // A one-hop LSP with propagated TTL quotes LSE TTL 1.
        let t = trace_of(vec![hop(1), lse_hop(2, 30_001, 1), hop(3)]);
        let spans = classify_tunnels(&t);
        assert_eq!(spans[0].ttype, TunnelType::Explicit);
    }

    #[test]
    fn revealed_run_is_invisible() {
        let mut r1 = hop(3);
        r1.revealed = true;
        let mut r2 = hop(3);
        r2.addr = Some(Ipv4Addr::new(10, 0, 9, 9));
        r2.revealed = true;
        let t = trace_of(vec![hop(1), hop(2), r1, r2, hop(4)]);
        let spans = classify_tunnels(&t);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].ttype, TunnelType::Invisible);
        assert_eq!(spans[0].len(), 2);
    }

    #[test]
    fn revealed_run_plus_opaque_eh_merges() {
        let mut r1 = hop(3);
        r1.revealed = true;
        let t = trace_of(vec![hop(1), hop(2), r1, lse_hop(3, 30_001, 251), hop(4)]);
        let spans = classify_tunnels(&t);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].ttype, TunnelType::Opaque);
        assert_eq!(spans[0].len(), 2);
    }

    #[test]
    fn implicit_qttl_run() {
        let mut i1 = hop(2);
        i1.quoted_ip_ttl = Some(2);
        let mut i2 = hop(3);
        i2.quoted_ip_ttl = Some(3);
        let t = trace_of(vec![hop(1), i1, i2, hop(4)]);
        let spans = classify_tunnels(&t);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].ttype, TunnelType::Implicit);
    }

    #[test]
    fn plain_trace_has_no_tunnels() {
        let t = trace_of(vec![hop(1), hop(2), hop(3)]);
        assert!(classify_tunnels(&t).is_empty());
    }
}
