//! # arest-tnt
//!
//! Paris traceroute + TNT over the simulator.
//!
//! TNT (Trace the Naughty Tunnels, Luttringer et al. / Vanaubel et
//! al.) is the measurement tool AReST post-processes: a Paris
//! traceroute that understands MPLS. This crate reproduces its whole
//! pipeline:
//!
//! * [`trace`] — the augmented trace model: per-hop address, RTT,
//!   quoted LSE stack, quoted IP TTL (qTTL), reply IP TTL.
//! * [`arena`] — the same trace data in columnar (struct-of-arrays)
//!   layout for the pipeline's hot scans, with a lossless converter
//!   in both directions.
//! * [`tracer`] — flow-stable UDP probing, ICMP parsing (through the
//!   real `arest-wire` codecs), probe/reply matching on the Paris
//!   identifier.
//! * [`reveal`] — hidden-tunnel triggers (RTLA-style return-TTL
//!   mismatch) and revelation by direct probing of interface
//!   addresses (DPR/BRPR-style), which exposes invisible and opaque
//!   tunnel interiors *without* their LSEs, exactly as the paper
//!   notes (§2.2).
//! * [`tunnels`] — per-trace tunnel span classification into the
//!   explicit / implicit / opaque / invisible taxonomy.
//! * [`multipath`] — MDA-style ECMP enumeration: vary the flow per
//!   TTL to expose the branch diversity Paris-style probing pins.
//! * [`campaign`] — the multi-vantage-point measurement driver,
//!   scheduled as `(AS, VP)` work units over the shared pool.
//! * [`pool`] — the work-stealing worker pool every parallel pipeline
//!   stage runs on, with a deterministic in-order merge.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod campaign;
pub mod multipath;
mod obs;
pub mod pool;
pub mod reveal;
pub mod trace;
pub mod tracer;
pub mod tunnels;

pub use arena::{HopView, TraceArena, TraceView};
pub use campaign::{run_campaign, run_campaigns, CampaignConfig, VantagePoint};
pub use multipath::{multipath_trace, MdaConfig, MultipathTrace};
pub use pool::{run_indexed, worker_count};
pub use trace::{Hop, Trace};
pub use tracer::{ping, trace_route, TraceConfig};
pub use tunnels::{classify_tunnels, TunnelObservation};
