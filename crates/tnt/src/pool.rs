//! The shared work-stealing worker pool.
//!
//! Every parallel stage of the measurement pipeline — campaign
//! probing, fingerprint batches, alias candidate generation, per-trace
//! restrict→augment→detect — funnels through [`run_indexed`]: work
//! units go into one MPMC channel, a fixed pool of workers pulls until
//! the channel drains (idle workers "steal" whatever is next, so an
//! expensive unit never serializes the rest behind it), and results
//! are merged back **in submission order**. That deterministic merge
//! is what makes a parallel build result-identical to a sequential
//! one regardless of worker count or scheduling.

use arest_conc::atomic::{AtomicUsize, Ordering};
use arest_conc::sync::Mutex;
use crossbeam::channel;
use std::panic;

/// Drop guard balancing the `tnt.pool.queue_depth` gauge: when it
/// drops — normal return *or* a panic unwinding out of the worker
/// scope — it drains whatever is still buffered in the unit channel
/// and subtracts each abandoned unit. Tying the drain to scope exit
/// itself (rather than to happy-path code after the scope) is what
/// keeps the gauge at zero when a worker panic propagates.
struct GaugeDrain<'a, T, F: Fn(&T) -> bool> {
    rx: &'a channel::Receiver<T>,
    counts: F,
}

impl<T, F: Fn(&T) -> bool> Drop for GaugeDrain<'_, T, F> {
    fn drop(&mut self) {
        let metrics = &*crate::obs::METRICS;
        for msg in self.rx.try_iter() {
            if (self.counts)(&msg) {
                metrics.pool_queue_depth.add(-1);
            }
        }
    }
}

/// Worker count for parallel stages: the `AREST_WORKERS` environment
/// variable when set (clamped to at least 1), otherwise the machine's
/// available parallelism.
pub fn worker_count() -> usize {
    worker_count_from(std::env::var("AREST_WORKERS").ok().as_deref())
}

/// [`worker_count`] with the `AREST_WORKERS` value injected, so tests
/// can exercise the parse paths without mutating the process
/// environment (which races other tests in the same binary).
fn worker_count_from(override_raw: Option<&str>) -> usize {
    if let Some(raw) = override_raw {
        if let Ok(n) = raw.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `work` over `items` on a pool of `workers` threads and
/// returns the results **in item order**, exactly as a serial
/// `items.into_iter().enumerate().map(|(i, x)| work(i, x))` would.
///
/// Scheduling is work-stealing: units are fed through one shared
/// channel and each worker pulls the next pending unit as soon as it
/// finishes its current one. A worker panic is propagated to the
/// caller with its original payload.
pub fn run_indexed<T, R, F>(items: Vec<T>, workers: usize, work: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let metrics = &*crate::obs::METRICS;
    metrics.pool_batches.inc();
    metrics.pool_units.add(n as u64);
    if workers <= 1 || n == 1 {
        // Sequential fast path: no channels, no threads — the single
        // "worker" takes every unit.
        metrics.pool_units_per_worker.record(n as u64);
        return items.into_iter().enumerate().map(|(idx, item)| work(idx, item)).collect();
    }

    let (unit_tx, unit_rx) = channel::unbounded::<(usize, T)>();
    let (result_tx, result_rx) = channel::unbounded::<(usize, R)>();
    for unit in items.into_iter().enumerate() {
        assert!(unit_tx.send(unit).is_ok(), "queueing work units");
    }
    // Close the work channel so workers stop when it drains.
    drop(unit_tx);
    metrics.pool_queue_depth.add(n as i64);

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    // Units abandoned when workers die (panic propagation below)
    // still count against the queue-depth gauge; this guard drains
    // them on every exit path out of the scope, unwinding included.
    let _drain = GaugeDrain { rx: &unit_rx, counts: |_: &(usize, T)| true };
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(n))
            .map(|_| {
                let unit_rx = unit_rx.clone();
                let result_tx = result_tx.clone();
                scope.spawn(move |_| {
                    let mut stolen = 0u64;
                    for (idx, item) in unit_rx.iter() {
                        metrics.pool_queue_depth.add(-1);
                        stolen += 1;
                        if result_tx.send((idx, work(idx, item))).is_err() {
                            // The result side is gone (another worker
                            // panicked and the drain unwound); stop
                            // pulling — the caller's scope-exit guard
                            // accounts for whatever is still queued.
                            break;
                        }
                    }
                    metrics.pool_units_per_worker.record(stolen);
                })
            })
            .collect();
        // Only workers hold result senders now: the drain below ends
        // exactly when every worker is done.
        drop(result_tx);
        for (idx, result) in result_rx.iter() {
            slots[idx] = Some(result);
        }
        for handle in handles {
            if let Err(payload) = handle.join() {
                panic::resume_unwind(payload);
            }
        }
    })
    .unwrap_or_else(|payload| panic::resume_unwind(payload));

    // Deterministic merge: results come back in index order no matter
    // which worker computed them when.
    slots.into_iter().map(|slot| slot.expect("every unit completes")).collect()
}

/// A worker's message on the dynamic pool's shared channel: either a
/// unit of work or the shutdown sentinel cascading through the pool.
enum Msg<T> {
    Unit(T),
    Done,
}

/// Handle through which a running [`run_dynamic`] work unit schedules
/// follow-up units onto the same pool — the primitive behind the
/// streaming pipeline, where the last `(AS, VP)` probe unit of an AS
/// injects that AS's fingerprint→alias→detect tail.
pub struct Injector<'a, T> {
    tx: &'a channel::Sender<Msg<T>>,
    pending: &'a AtomicUsize,
}

impl<T> Injector<'_, T> {
    /// Enqueues a follow-up unit. May be called from inside `work` at
    /// any time before that unit returns; the pool only shuts down
    /// once every queued and running unit (injected ones included)
    /// has completed.
    pub fn push(&self, unit: T) {
        let metrics = &*crate::obs::METRICS;
        metrics.pool_units.inc();
        metrics.pool_queue_depth.add(1);
        // Incremented before the send — and therefore before the
        // injecting unit's own decrement — so the pending count can
        // never hit zero while injected work is still queued.
        // Relaxed: RMWs on one atomic share a total modification
        // order and this thread's add precedes its own later sub in
        // program order, so the count is exact; the unit itself is
        // published by the channel's mutex, not by this counter.
        self.pending.fetch_add(1, Ordering::Relaxed);
        assert!(self.tx.send(Msg::Unit(unit)).is_ok(), "queueing injected work");
    }
}

/// Runs a **dynamic** batch: starts from `initial` units and lets any
/// running unit inject follow-up units through the [`Injector`].
/// Returns once every unit — initial and injected — has completed.
///
/// Unlike [`run_indexed`] there is no result merge: units communicate
/// through whatever channels or shared state the caller closes over
/// (the streaming pipeline sends completed ASes into a bounded
/// channel). Scheduling is the same work-stealing pull loop; a worker
/// panic aborts the remaining queue and is re-raised on the caller.
pub fn run_dynamic<T, F>(initial: Vec<T>, workers: usize, work: &F)
where
    T: Send,
    F: Fn(T, &Injector<'_, T>) + Sync,
{
    if initial.is_empty() {
        return;
    }
    let metrics = &*crate::obs::METRICS;
    metrics.pool_batches.inc();
    metrics.pool_units.add(initial.len() as u64);

    let n = initial.len();
    let (tx, rx) = channel::unbounded::<Msg<T>>();
    let pending = AtomicUsize::new(n);
    for unit in initial {
        assert!(tx.send(Msg::Unit(unit)).is_ok(), "queueing initial work units");
    }
    metrics.pool_queue_depth.add(n as i64);

    // The queue-depth gauge drains on every exit path — a panicking
    // unit unwinds through this guard with the rest of the queue
    // still buffered.
    let _drain = GaugeDrain { rx: &rx, counts: |msg: &Msg<T>| matches!(msg, Msg::Unit(_)) };

    if workers <= 1 {
        // Sequential fast path: one in-thread pull loop. Injected
        // units land behind the queued ones, so the loop ends exactly
        // when no unit injected anything more.
        let injector = Injector { tx: &tx, pending: &pending };
        while let Ok(Msg::Unit(unit)) = rx.try_recv() {
            metrics.pool_queue_depth.add(-1);
            work(unit, &injector);
        }
        return;
    }

    // First panic payload observed by any worker; re-raised after the
    // scope joins so the caller sees the original panic.
    let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                let tx = tx.clone();
                let pending = &pending;
                let panicked = &panicked;
                scope.spawn(move |_| {
                    let injector = Injector { tx: &tx, pending };
                    let mut stolen = 0u64;
                    loop {
                        match rx.recv() {
                            Ok(Msg::Unit(unit)) => {
                                metrics.pool_queue_depth.add(-1);
                                stolen += 1;
                                let outcome = panic::catch_unwind(panic::AssertUnwindSafe(|| {
                                    work(unit, &injector);
                                }));
                                match outcome {
                                    Ok(()) => {
                                        // The 1→0 transition happens on
                                        // exactly one worker: it starts
                                        // the Done cascade that walks
                                        // every other worker out of its
                                        // recv loop. Relaxed: the RMW
                                        // total order alone decides who
                                        // saw 1→0; everything the units
                                        // wrote is published by the
                                        // channel mutex and the scope
                                        // join, not by this counter.
                                        if pending.fetch_sub(1, Ordering::Relaxed) == 1 {
                                            let _ = tx.send(Msg::Done);
                                            break;
                                        }
                                    }
                                    Err(payload) => {
                                        let mut slot = panicked
                                            .lock()
                                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                                        if slot.is_none() {
                                            *slot = Some(payload);
                                        }
                                        drop(slot);
                                        // Abort: cascade shutdown without
                                        // waiting for pending to drain.
                                        let _ = tx.send(Msg::Done);
                                        break;
                                    }
                                }
                            }
                            // Forward the sentinel so every remaining
                            // worker sees it, then exit.
                            Ok(Msg::Done) => {
                                let _ = tx.send(Msg::Done);
                                break;
                            }
                            Err(_) => break,
                        }
                    }
                    metrics.pool_units_per_worker.record(stolen);
                })
            })
            .collect();
        drop(tx);
        for handle in handles {
            if let Err(payload) = handle.join() {
                panic::resume_unwind(payload);
            }
        }
    })
    .unwrap_or_else(|payload| panic::resume_unwind(payload));

    // The `_drain` guard (dropped on return *and* on the unwind paths
    // above) subtracts units abandoned by a panic shutdown, so the
    // queue-depth gauge reads zero again on every exit.
    if let Some(payload) = panicked.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<u64> = (0..64).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for workers in [1, 2, 4, 7] {
            let parallel = run_indexed(items.clone(), workers, &|_, x: u64| x * x);
            assert_eq!(parallel, serial, "workers={workers}");
        }
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a", "b", "c", "d"];
        let tagged = run_indexed(items, 3, &|idx, s: &str| format!("{idx}:{s}"));
        assert_eq!(tagged, vec!["0:a", "1:b", "2:c", "3:d"]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = run_indexed(Vec::<u32>::new(), 4, &|_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_unit_cost_still_merges_deterministically() {
        // Make early units slow so late units finish first.
        let items: Vec<u64> = (0..16).collect();
        let out = run_indexed(items, 4, &|_, x: u64| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x + 100
        });
        assert_eq!(out, (100..116).collect::<Vec<u64>>());
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            run_indexed(vec![1u32, 2, 3], 2, &|_, x| {
                assert_ne!(x, 2, "boom");
                x
            })
        });
        assert!(result.is_err(), "the worker panic must reach the caller");
    }

    #[test]
    fn concurrent_metric_increments_from_the_pool_all_land() {
        // Workers hammer one shared counter handle; every increment
        // must land regardless of scheduling.
        let registry = arest_obs::Registry::new();
        let counter = registry.counter("test.pool.increments");
        let items: Vec<u64> = (0..1_000).collect();
        let out = run_indexed(items, 4, &|_, x: u64| {
            counter.inc();
            x
        });
        assert_eq!(out.len(), 1_000);
        assert_eq!(counter.get(), 1_000);
    }

    #[test]
    fn dynamic_pool_runs_injected_follow_up_work() {
        // Each initial unit n injects two children n-1 down to zero: a
        // binary fan-out whose total unit count is known in advance.
        use std::sync::atomic::{AtomicU64, Ordering};
        let expected = |n: u64| 2u64.pow(n as u32 + 1) - 1; // units in one fan-out tree
        for workers in [1, 4] {
            let executed = AtomicU64::new(0);
            run_dynamic(vec![3u64, 2], workers, &|n, injector| {
                executed.fetch_add(1, Ordering::SeqCst);
                if n > 0 {
                    injector.push(n - 1);
                    injector.push(n - 1);
                }
            });
            assert_eq!(
                executed.load(Ordering::SeqCst),
                expected(3) + expected(2),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn dynamic_pool_with_empty_input_returns_immediately() {
        run_dynamic(Vec::<u8>::new(), 4, &|_, _| unreachable!("no units to run"));
    }

    #[test]
    fn dynamic_pool_propagates_worker_panics() {
        for workers in [1, 3] {
            let result = std::panic::catch_unwind(|| {
                run_dynamic(vec![1u32, 2, 3, 4], workers, &|x, injector| {
                    if x == 1 {
                        injector.push(99);
                    }
                    assert_ne!(x, 99, "boom");
                });
            });
            assert!(result.is_err(), "workers={workers}: the panic must reach the caller");
        }
    }

    #[test]
    fn worker_count_honors_env_override() {
        assert_eq!(worker_count_from(Some("3")), 3);
        assert_eq!(worker_count_from(Some(" 5 ")), 5, "whitespace trimmed");
        assert_eq!(worker_count_from(Some("0")), 1, "clamped to at least one worker");
        assert!(worker_count_from(Some("nonsense")) >= 1, "bad value falls back");
        assert!(worker_count_from(None) >= 1, "unset falls back to hardware");
    }
}
