//! MDA-style multipath enumeration.
//!
//! Paris traceroute keeps one flow pinned to one path; its Multipath
//! Detection Algorithm (MDA) does the opposite on purpose: vary the
//! flow identifier per TTL to enumerate the ECMP branches a
//! destination's traffic can spread over. This module implements the
//! per-hop enumeration with a fixed flow budget — enough to expose
//! the simulator's hash-based ECMP — and reports, per TTL, every
//! address observed together with the flows that reached it.
//!
//! AReST itself consumes single-flow traces (sequences only make
//! sense along one path), but multipath enumeration is how a
//! measurement campaign learns that per-flow diversity exists — and
//! why Paris-style flow stability is required in the first place.

use crate::trace::Hop;
use crate::tracer::TraceConfig;
use arest_simnet::packet::{ProbeReply, ProbeSpec, TransportPayload};
use arest_simnet::Network;
use arest_topo::ids::RouterId;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Configuration for the multipath enumeration.
#[derive(Debug, Clone, Copy)]
pub struct MdaConfig {
    /// Flow identifiers probed per TTL (source ports, starting at the
    /// base flow). Real MDA adapts this to a confidence bound; a fixed
    /// budget is sufficient against the simulator's 4-way ECMP cap.
    pub flows_per_hop: u16,
    /// Maximum probe TTL.
    pub max_ttl: u8,
    /// Consecutive all-silent TTLs after which enumeration stops.
    pub gap_limit: u8,
}

impl Default for MdaConfig {
    fn default() -> MdaConfig {
        MdaConfig { flows_per_hop: 16, max_ttl: 32, gap_limit: 3 }
    }
}

/// One TTL level of the discovered multipath DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MdaLevel {
    /// The probe TTL.
    pub ttl: u8,
    /// Every responding address at this TTL, with the source ports
    /// (flows) that reached it. Ordered for determinism.
    pub branches: BTreeMap<Ipv4Addr, Vec<u16>>,
    /// Whether some flow reached the destination at this TTL.
    pub reached_destination: bool,
}

impl MdaLevel {
    /// Number of distinct branches (ECMP fan-out) at this TTL.
    pub fn width(&self) -> usize {
        self.branches.len()
    }
}

/// The discovered multipath structure toward one destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultipathTrace {
    /// The destination probed.
    pub dst: Ipv4Addr,
    /// Per-TTL levels, in TTL order.
    pub levels: Vec<MdaLevel>,
}

impl MultipathTrace {
    /// The widest fan-out observed anywhere on the path.
    pub fn max_width(&self) -> usize {
        self.levels.iter().map(MdaLevel::width).max().unwrap_or(0)
    }

    /// Whether the path is a pure chain (no ECMP anywhere).
    pub fn is_single_path(&self) -> bool {
        self.max_width() <= 1
    }
}

/// Enumerates the ECMP branches toward `dst` by sweeping source ports
/// per TTL.
pub fn multipath_trace(
    net: &Network,
    entry: RouterId,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    config: &MdaConfig,
) -> MultipathTrace {
    let base = TraceConfig::default().flow.0;
    let mut levels = Vec::new();
    let mut silent_run = 0u8;

    for ttl in 1..=config.max_ttl {
        let mut level = MdaLevel { ttl, branches: BTreeMap::new(), reached_destination: false };
        for offset in 0..config.flows_per_hop {
            let src_port = base.wrapping_add(offset);
            let spec = ProbeSpec {
                entry,
                src,
                dst,
                ttl,
                transport: TransportPayload::Udp { src_port, dst_port: 33_434, ident: 1 + offset },
            };
            match net.probe(&spec) {
                ProbeReply::TimeExceeded { from, .. } => {
                    level.branches.entry(from).or_default().push(src_port);
                }
                ProbeReply::DestUnreachable { from, .. } | ProbeReply::EchoReply { from, .. } => {
                    level.branches.entry(from).or_default().push(src_port);
                    level.reached_destination = true;
                }
                ProbeReply::Silent(_) => {}
            }
        }
        let done = level.reached_destination;
        let empty = level.branches.is_empty();
        levels.push(level);
        if done {
            break;
        }
        silent_run = if empty { silent_run + 1 } else { 0 };
        if silent_run >= config.gap_limit {
            break;
        }
    }

    MultipathTrace { dst, levels }
}

/// Collapses a multipath enumeration into a Paris-style single-flow
/// hop list (the primary flow only) — handy for feeding the result
/// into per-flow consumers.
pub fn primary_flow_hops(trace: &MultipathTrace) -> Vec<Hop> {
    let base = TraceConfig::default().flow.0;
    trace
        .levels
        .iter()
        .map(|level| {
            let addr = level
                .branches
                .iter()
                .find(|(_, flows)| flows.contains(&base))
                .map(|(addr, _)| *addr);
            Hop { addr, ..Hop::silent(level.ttl) }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use arest_topo::graph::Topology;
    use arest_topo::ids::AsNumber;
    use arest_topo::spf::DomainSpf;
    use arest_topo::vendor::Vendor;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    /// GW — {B, C} — D: one ECMP diamond.
    fn diamond() -> (Network, Vec<RouterId>, Ipv4Addr) {
        let mut topo = Topology::new();
        let asn = AsNumber(65_103);
        let r: Vec<RouterId> = (0..4)
            .map(|i| topo.add_router(format!("m{i}"), asn, Vendor::Cisco, ip(10, 253, 1, i + 1)))
            .collect();
        for (k, (a, b)) in [(0usize, 1usize), (0, 2), (1, 3), (2, 3)].iter().enumerate() {
            topo.add_link(
                r[*a],
                ip(10, 253, 10 + k as u8, 1),
                r[*b],
                ip(10, 253, 10 + k as u8, 2),
                1,
            );
        }
        let dst = topo.router(r[3]).loopback;
        let spf = DomainSpf::for_as(&topo, asn);
        let mut net = Network::new(topo);
        net.register_igp(asn, spf);
        (net, r, dst)
    }

    #[test]
    fn mda_discovers_both_diamond_branches() {
        let (net, r, dst) = diamond();
        let trace = multipath_trace(&net, r[0], ip(192, 0, 2, 1), dst, &MdaConfig::default());
        assert!(!trace.is_single_path());
        assert_eq!(trace.max_width(), 2, "{trace:?}");
        // The middle level holds both branch routers' interfaces.
        let middle = &trace.levels[1];
        assert_eq!(middle.width(), 2);
        // Every probed flow landed somewhere.
        let flows: usize = middle.branches.values().map(Vec::len).sum();
        assert_eq!(flows, usize::from(MdaConfig::default().flows_per_hop));
        // The last level reached the destination.
        assert!(trace.levels.last().unwrap().reached_destination);
    }

    #[test]
    fn mda_on_a_chain_is_single_path() {
        let mut topo = Topology::new();
        let asn = AsNumber(65_104);
        let r: Vec<RouterId> = (0..3)
            .map(|i| topo.add_router(format!("n{i}"), asn, Vendor::Cisco, ip(10, 253, 2, i + 1)))
            .collect();
        for i in 0..2u8 {
            topo.add_link(
                r[i as usize],
                ip(10, 253, 20 + i, 1),
                r[i as usize + 1],
                ip(10, 253, 20 + i, 2),
                1,
            );
        }
        let dst = topo.router(r[2]).loopback;
        let spf = DomainSpf::for_as(&topo, asn);
        let mut net = Network::new(topo);
        net.register_igp(asn, spf);
        let trace = multipath_trace(&net, r[0], ip(192, 0, 2, 1), dst, &MdaConfig::default());
        assert!(trace.is_single_path());
    }

    #[test]
    fn primary_flow_extraction_is_a_connected_hop_list() {
        let (net, r, dst) = diamond();
        let trace = multipath_trace(&net, r[0], ip(192, 0, 2, 1), dst, &MdaConfig::default());
        let hops = primary_flow_hops(&trace);
        assert_eq!(hops.len(), trace.levels.len());
        assert!(hops.iter().all(|h| h.addr.is_some()), "the base flow answers everywhere");
    }
}
