//! Hidden-tunnel triggers and revelation — the "T" in TNT.
//!
//! Invisible (and opaque) tunnels freeze the probe's IP TTL, so the
//! router terminating the tunnel sits topologically further from the
//! vantage point than its traceroute position suggests. Two signals
//! betray that:
//!
//! * **RTLA** (Return TTL Loop Analysis): the reply's IP TTL implies a
//!   return path longer than the forward position;
//! * **quoted LSE TTL** near 255 at a single labelled hop (opaque
//!   tunnels): the LSE was pushed at 255 and decremented once per
//!   hidden hop.
//!
//! Revelation then probes the tunnel's ending-hop *interface address*
//! directly (DPR/BRPR-style). Link addresses carry no LDP/SR FEC, so
//! those probes ride plain IP and expose the interior hop by hop —
//! without LSEs, as the paper notes revealed content comes bare
//! (§2.2).

use crate::trace::{Hop, Trace};
use crate::tracer::{trace_route, TraceConfig};
use arest_simnet::Network;
use arest_topo::ids::RouterId;
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// Infers the initial TTL a reply started from (64, 128, or 255).
pub fn initial_ttl_guess(observed: u8) -> u8 {
    if observed <= 64 {
        64
    } else if observed <= 128 {
        128
    } else {
        255
    }
}

/// Estimated return-path length from a reply TTL.
pub fn return_path_len(reply_ttl: u8) -> u8 {
    initial_ttl_guess(reply_ttl) - reply_ttl
}

/// The hidden-hop estimate for a hop at 1-based forward position
/// `position`: how many more routers the return path crosses than the
/// forward position explains (assuming near-symmetric paths, as TNT
/// does).
pub fn hidden_hop_estimate(hop: &Hop, position: u8) -> u8 {
    match hop.reply_ip_ttl {
        Some(reply_ttl) => return_path_len(reply_ttl).saturating_sub(position),
        None => 0,
    }
}

/// Runs a full TNT trace: Paris traceroute, trigger detection, and
/// revelation of hidden tunnel interiors by direct interface probing.
pub fn trace_with_revelation(
    net: &Network,
    vp_name: &str,
    entry: RouterId,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    config: &TraceConfig,
) -> Trace {
    let mut trace = trace_route(net, vp_name, entry, src, dst, config);

    // Detect the hops where the hidden estimate jumps: those are
    // tunnel ending hops with interior content upstream of them.
    let mut prev_hidden = 0u8;
    let mut revelations: Vec<(usize, Ipv4Addr)> = Vec::new();
    for (idx, hop) in trace.hops.iter().enumerate() {
        if !hop.responded() {
            continue;
        }
        let hidden = hidden_hop_estimate(hop, hop.ttl);
        if hidden > prev_hidden {
            if let Some(addr) = hop.addr {
                revelations.push((idx, addr));
            }
        }
        prev_hidden = hidden;
    }

    if revelations.is_empty() {
        return trace;
    }
    let metrics = &*crate::obs::METRICS;
    metrics.reveal_triggers.add(revelations.len() as u64);

    let known: HashSet<Ipv4Addr> = trace.responding_addrs().collect();

    // Process ending hops back to front so indices stay valid while
    // splicing.
    for (idx, ending_hop_addr) in revelations.into_iter().rev() {
        metrics.reveal_attempts.inc();
        let sub = trace_route(net, vp_name, entry, src, ending_hop_addr, config);
        if !sub.reached {
            continue;
        }
        // Interior = sub-trace hops that are new to the main trace
        // (excluding the ending hop itself, which answers as the
        // sub-trace destination).
        let interior: Vec<Hop> = sub
            .hops
            .iter()
            .filter(|h| {
                !h.is_destination
                    && h.addr != Some(ending_hop_addr)
                    && h.addr.is_some_and(|a| !known.contains(&a))
            })
            .map(|h| Hop {
                ttl: trace.hops[idx].ttl,
                stack: None, // revealed content comes without LSEs
                quoted_ip_ttl: None,
                revealed: true,
                is_destination: false,
                ..h.clone()
            })
            .collect();
        metrics.reveal_revealed_hops.add(interior.len() as u64);
        for (offset, hop) in interior.into_iter().enumerate() {
            trace.hops.insert(idx + offset, hop);
        }
    }

    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_ttl_guesses() {
        assert_eq!(initial_ttl_guess(62), 64);
        assert_eq!(initial_ttl_guess(64), 64);
        assert_eq!(initial_ttl_guess(65), 128);
        assert_eq!(initial_ttl_guess(129), 255);
        assert_eq!(initial_ttl_guess(250), 255);
    }

    #[test]
    fn hidden_estimate_counts_excess_return_hops() {
        let mut hop = Hop::silent(3);
        assert_eq!(hidden_hop_estimate(&hop, 3), 0, "silent hops estimate 0");
        hop.addr = Some(Ipv4Addr::new(10, 0, 0, 1));
        // Reply TTL 249 → initial 255 → return path 6 hops; at forward
        // position 3, that's 3 hidden routers.
        hop.reply_ip_ttl = Some(249);
        assert_eq!(hidden_hop_estimate(&hop, 3), 3);
        // Consistent reply (return == forward) → nothing hidden.
        hop.reply_ip_ttl = Some(252);
        assert_eq!(hidden_hop_estimate(&hop, 3), 0);
    }
}
