//! The augmented trace model TNT produces and AReST consumes.

use arest_wire::mpls::LabelStack;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// One hop of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop {
    /// The probe TTL this hop answered (1-based). Revealed hops share
    /// the TTL of the tunnel's ending hop they were hidden behind.
    pub ttl: u8,
    /// The replying address, `None` for a silent hop (`*`).
    pub addr: Option<Ipv4Addr>,
    /// Round-trip time in microseconds, when a reply arrived.
    pub rtt_us: Option<u32>,
    /// The MPLS label stack quoted via RFC 4950, top entry first.
    /// Shared (`Arc`) so restriction and augmentation reference one
    /// allocation instead of deep-cloning per pipeline stage.
    pub stack: Option<Arc<LabelStack>>,
    /// The TTL of the quoted IP header inside the ICMP error (the
    /// "qTTL"); values above 1 betray ttl-propagating tunnels.
    pub quoted_ip_ttl: Option<u8>,
    /// The IP TTL of the ICMP reply itself as received at the vantage
    /// point — the raw material of TTL fingerprinting.
    pub reply_ip_ttl: Option<u8>,
    /// Whether TNT inserted this hop through hidden-tunnel revelation
    /// (no LSE available for revealed hops, per the paper §2.2).
    pub revealed: bool,
    /// Whether this hop is the probe destination (port unreachable).
    pub is_destination: bool,
}

impl Hop {
    /// A silent hop at `ttl`.
    pub fn silent(ttl: u8) -> Hop {
        Hop {
            ttl,
            addr: None,
            rtt_us: None,
            stack: None,
            quoted_ip_ttl: None,
            reply_ip_ttl: None,
            revealed: false,
            is_destination: false,
        }
    }

    /// Whether the hop replied at all.
    pub fn responded(&self) -> bool {
        self.addr.is_some()
    }

    /// Depth of the quoted label stack (0 when none was quoted).
    pub fn stack_depth(&self) -> usize {
        self.stack.as_ref().map_or(0, |s| s.depth())
    }
}

/// A complete augmented trace from one vantage point to one target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Name of the vantage point that ran the trace. Interned
    /// (`Arc<str>`): every trace of a campaign shares one allocation
    /// per VP.
    pub vp: Arc<str>,
    /// Probe source address.
    pub src: Ipv4Addr,
    /// Probe destination address.
    pub dst: Ipv4Addr,
    /// Hops in path order (revealed hops spliced in place).
    pub hops: Vec<Hop>,
    /// Whether the destination answered.
    pub reached: bool,
}

impl Trace {
    /// Addresses that replied, in path order.
    pub fn responding_addrs(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.hops.iter().filter_map(|h| h.addr)
    }

    /// Number of hops that quoted an MPLS label stack.
    pub fn mpls_hop_count(&self) -> usize {
        self.hops.iter().filter(|h| h.stack.is_some()).count()
    }

    /// Whether any hop quoted an MPLS label stack.
    pub fn has_mpls(&self) -> bool {
        self.hops.iter().any(|h| h.stack.is_some())
    }
}

/// Collects the fingerprintable addresses of a trace set: every hop
/// address that came with a reply IP TTL, as a **sorted, deduplicated**
/// list plus the **first-seen** time-exceeded reply TTL per address
/// (trace order, hop order — the TE component of the TTL signature).
///
/// This is the single address-collection step shared by the staged and
/// streaming pipelines; the sort makes any downstream split or probe
/// order deterministic.
///
/// The map is pre-sized from the total hop count (an upper bound on
/// distinct addresses) so insertion never rehash-grows, and the sorted
/// list is built from first insertions instead of re-hashing every key
/// out of the finished map.
pub fn collect_addrs<'a, I>(traces: I) -> (Vec<Ipv4Addr>, HashMap<Ipv4Addr, u8>)
where
    I: IntoIterator<Item = &'a Trace> + Clone,
{
    let hop_count: usize = traces.clone().into_iter().map(|t| t.hops.len()).sum();
    let mut te_ttls: HashMap<Ipv4Addr, u8> = HashMap::with_capacity(hop_count);
    let mut addrs: Vec<Ipv4Addr> = Vec::with_capacity(hop_count);
    for trace in traces {
        for hop in &trace.hops {
            if let (Some(addr), Some(ttl)) = (hop.addr, hop.reply_ip_ttl) {
                if let std::collections::hash_map::Entry::Vacant(slot) = te_ttls.entry(addr) {
                    slot.insert(ttl);
                    addrs.push(addr);
                }
            }
        }
    }
    addrs.sort_unstable();
    (addrs, te_ttls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arest_wire::mpls::Label;

    fn stack(labels: &[u32]) -> LabelStack {
        let labels: Vec<Label> = labels.iter().map(|&v| Label::new(v).unwrap()).collect();
        LabelStack::from_labels(&labels, 1)
    }

    #[test]
    fn collect_addrs_sorts_dedups_and_keeps_first_seen_te_ttl() {
        let hop = |addr: [u8; 4], reply_ttl: Option<u8>| Hop {
            ttl: 1,
            addr: Some(Ipv4Addr::from(addr)),
            rtt_us: None,
            stack: None,
            quoted_ip_ttl: None,
            reply_ip_ttl: reply_ttl,
            revealed: false,
            is_destination: false,
        };
        let trace = |hops: Vec<Hop>| Trace {
            vp: "vp".into(),
            src: Ipv4Addr::new(192, 0, 2, 1),
            dst: Ipv4Addr::new(203, 0, 113, 1),
            hops,
            reached: true,
        };
        let traces = vec![
            trace(vec![
                hop([10, 0, 0, 9], Some(250)),
                hop([10, 0, 0, 1], Some(61)),
                Hop::silent(3),
                hop([10, 0, 0, 5], None), // no reply TTL → not fingerprintable
            ]),
            trace(vec![
                hop([10, 0, 0, 1], Some(59)), // repeat: first-seen TTL (61) must win
                hop([10, 0, 0, 3], Some(252)),
            ]),
        ];
        let (addrs, te) = collect_addrs(&traces);
        let a = |last: u8| Ipv4Addr::new(10, 0, 0, last);
        assert_eq!(addrs, vec![a(1), a(3), a(9)], "sorted, deduplicated, TTL-bearing only");
        assert_eq!(te[&a(1)], 61, "first observation wins");
        assert_eq!(te[&a(3)], 252);
        assert_eq!(te[&a(9)], 250);
        assert!(!te.contains_key(&a(5)));
    }

    #[test]
    fn silent_hop_has_no_data() {
        let hop = Hop::silent(7);
        assert_eq!(hop.ttl, 7);
        assert!(!hop.responded());
        assert_eq!(hop.stack_depth(), 0);
    }

    #[test]
    fn trace_accessors() {
        let mut trace = Trace {
            vp: "vm1".into(),
            src: Ipv4Addr::new(192, 0, 2, 1),
            dst: Ipv4Addr::new(203, 0, 113, 1),
            hops: vec![Hop::silent(1)],
            reached: false,
        };
        assert!(!trace.has_mpls());
        trace.hops.push(Hop {
            ttl: 2,
            addr: Some(Ipv4Addr::new(10, 0, 0, 1)),
            rtt_us: Some(1200),
            stack: Some(Arc::new(stack(&[16_005, 24_001]))),
            quoted_ip_ttl: Some(1),
            reply_ip_ttl: Some(253),
            revealed: false,
            is_destination: false,
        });
        assert!(trace.has_mpls());
        assert_eq!(trace.mpls_hop_count(), 1);
        assert_eq!(trace.responding_addrs().count(), 1);
        assert_eq!(trace.hops[1].stack_depth(), 2);
    }
}
