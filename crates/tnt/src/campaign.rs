//! The multi-vantage-point measurement driver.
//!
//! The paper probes each target list from 50 geographically spread
//! VPs, shuffling targets per VP (§5). This module reproduces that
//! schedule as `(AS, VP)` work units: every AS campaign contributes
//! one unit per vantage point, and all units of all campaigns are fed
//! through the shared work-stealing pool ([`crate::pool`]) so a
//! 60-AS build saturates the machine instead of serializing AS after
//! AS. The merge is deterministic — traces come back grouped by AS,
//! VP-major within an AS — so the result is identical at any worker
//! count.

use crate::pool;
use crate::reveal::trace_with_revelation;
use crate::trace::Trace;
use crate::tracer::TraceConfig;
use arest_obs::{Span, SpanContext};
use arest_simnet::Network;
use arest_topo::ids::RouterId;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// A measurement vantage point: a host address and the router its
/// probes enter the network through.
#[derive(Debug, Clone)]
pub struct VantagePoint {
    /// Human-readable name (e.g. "VM12-paris"), interned so every
    /// trace of a campaign shares the same allocation.
    pub name: Arc<str>,
    /// The VP's source address.
    pub addr: Ipv4Addr,
    /// The first router that processes the VP's probes.
    pub gateway: RouterId,
}

/// Campaign configuration.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Per-trace configuration.
    pub trace: TraceConfig,
    /// Whether to run TNT revelation on every trace (the paper's
    /// setting) or plain Paris traceroute.
    pub reveal: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig { trace: TraceConfig::default(), reveal: true }
    }
}

/// One `(AS, VP)` work unit: a vantage point traces one AS's target
/// list in its VP-specific order. Each trace opens a `tnt.trace` span
/// under `unit_span` (revelation sub-traces stay unspanned — they are
/// internals of the one measurement, and their count varies with
/// topology, not schedule).
fn trace_unit(
    net: &Network,
    vp: &VantagePoint,
    targets: &[Ipv4Addr],
    config: &CampaignConfig,
    unit_span: &Span,
) -> Vec<Trace> {
    let mut order: Vec<Ipv4Addr> = targets.to_vec();
    shuffle_for_vp(&mut order, vp.addr);
    order
        .into_iter()
        .map(|dst| {
            let mut span = unit_span.child("tnt.trace");
            let mut trace = if config.reveal {
                trace_with_revelation(net, &vp.name, vp.gateway, vp.addr, dst, &config.trace)
            } else {
                crate::tracer::trace_route(net, &vp.name, vp.gateway, vp.addr, dst, &config.trace)
            };
            span.record("dst", dst);
            span.record("hops", trace.hops.len());
            span.record("reached", trace.reached);
            // Intern the VP name: one shared allocation per VP instead
            // of one string per trace.
            trace.vp = Arc::clone(&vp.name);
            trace
        })
        .collect()
}

/// Runs one `(AS, VP)` campaign unit under an explicit parent span —
/// the public entry point the streaming pipeline schedules directly
/// (one unit per vantage point per AS) instead of going through a
/// whole-batch [`run_campaigns_spanned`] barrier.
///
/// Opens a `tnt.campaign.unit` span parented to `parent` (normally
/// the AS's `tnt.campaign` span context, which is `Copy` and can ride
/// inside a pool work unit) and returns the VP's traces in its
/// shuffled target order.
pub fn campaign_unit(
    net: &Network,
    vp: &VantagePoint,
    targets: &[Ipv4Addr],
    config: &CampaignConfig,
    parent: SpanContext,
) -> Vec<Trace> {
    let mut unit_span = crate::obs::TRACER.span_with_parent("tnt.campaign.unit", parent);
    unit_span.record("vp", &*vp.name);
    unit_span.record("targets", targets.len());
    trace_unit(net, vp, targets, config, &unit_span)
}

/// Runs one campaign: every VP traces every target, with the target
/// order shuffled per VP (deterministically) to avoid looking like an
/// attack, exactly as §5 describes. Returns all traces, grouped by VP
/// in VP order.
pub fn run_campaign(
    net: &Network,
    vps: &[VantagePoint],
    targets: &[Ipv4Addr],
    config: &CampaignConfig,
) -> Vec<Trace> {
    let lists = [targets.to_vec()];
    run_campaigns(net, vps, &lists, config, pool::worker_count()).pop().unwrap_or_default()
}

/// Runs many campaigns (one target list per AS) as a single batch of
/// `(AS, VP)` work units over a pool of `workers` threads.
///
/// Returns one trace vector per target list, each grouped by VP in VP
/// order — element `i` is exactly what `run_campaign` would return
/// for `target_lists[i]`, regardless of worker count.
pub fn run_campaigns(
    net: &Network,
    vps: &[VantagePoint],
    target_lists: &[Vec<Ipv4Addr>],
    config: &CampaignConfig,
    workers: usize,
) -> Vec<Vec<Trace>> {
    run_campaigns_spanned(net, vps, target_lists, config, workers, SpanContext::NONE)
}

/// [`run_campaigns`] parented under an explicit span context.
///
/// Each non-empty target list opens a `tnt.campaign` span (child of
/// `parent`) that stays open for the whole batch; every `(AS, VP)`
/// unit opens a `tnt.campaign.unit` span explicitly parented to its
/// campaign's [`SpanContext`] — the context is `Copy` and rides inside
/// the work unit, so a unit stolen by another pool worker still lands
/// under the right campaign in the reconstructed tree.
pub fn run_campaigns_spanned(
    net: &Network,
    vps: &[VantagePoint],
    target_lists: &[Vec<Ipv4Addr>],
    config: &CampaignConfig,
    workers: usize,
    parent: SpanContext,
) -> Vec<Vec<Trace>> {
    let tracer = &*crate::obs::TRACER;
    let campaign_spans: Vec<Option<Span>> = target_lists
        .iter()
        .enumerate()
        .map(|(as_idx, targets)| {
            if targets.is_empty() {
                return None;
            }
            let mut span = tracer.span_with_parent("tnt.campaign", parent);
            span.record("as_idx", as_idx);
            span.record("targets", targets.len());
            Some(span)
        })
        .collect();

    let units: Vec<(usize, &VantagePoint, &[Ipv4Addr], SpanContext)> = target_lists
        .iter()
        .enumerate()
        .filter(|(_, targets)| !targets.is_empty())
        .flat_map(|(as_idx, targets)| {
            let context = campaign_spans[as_idx].as_ref().map_or(SpanContext::NONE, Span::context);
            vps.iter().map(move |vp| (as_idx, vp, targets.as_slice(), context))
        })
        .collect();

    let per_unit = pool::run_indexed(units, workers, &|_, (as_idx, vp, targets, context)| {
        (as_idx, campaign_unit(net, vp, targets, config, context))
    });

    let mut out: Vec<Vec<Trace>> = Vec::with_capacity(target_lists.len());
    out.resize_with(target_lists.len(), Vec::new);
    // Units are ordered AS-major, VP-minor, and `run_indexed` merges
    // in unit order, so extending per AS reproduces the sequential
    // concatenation exactly.
    for (as_idx, traces) in per_unit {
        out[as_idx].extend(traces);
    }
    out
}

/// Deterministic per-VP Fisher–Yates shuffle keyed on the VP address
/// (xorshift64*). Every VP visits the same target set in its own,
/// reproducible order.
pub fn shuffle_for_vp(targets: &mut [Ipv4Addr], vp_addr: Ipv4Addr) {
    let mut state = u64::from(u32::from(vp_addr)) | 1;
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        state
    };
    for i in (1..targets.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        targets.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arest_simnet::plane::Route;
    use arest_topo::graph::Topology;
    use arest_topo::ids::AsNumber;
    use arest_topo::prefix::Prefix;
    use arest_topo::vendor::Vendor;

    fn base_targets() -> Vec<Ipv4Addr> {
        (1..=16u8).map(|i| Ipv4Addr::new(10, 0, 0, i)).collect()
    }

    #[test]
    fn shuffle_is_deterministic_per_vp() {
        let base = base_targets();
        let mut a = base.clone();
        let mut b = base;
        shuffle_for_vp(&mut a, Ipv4Addr::new(192, 0, 2, 1));
        shuffle_for_vp(&mut b, Ipv4Addr::new(192, 0, 2, 1));
        assert_eq!(a, b, "same VP → same order");
    }

    #[test]
    fn shuffle_differs_between_vps() {
        let base = base_targets();
        let mut a = base.clone();
        let mut b = base;
        shuffle_for_vp(&mut a, Ipv4Addr::new(192, 0, 2, 1));
        shuffle_for_vp(&mut b, Ipv4Addr::new(192, 0, 2, 2));
        assert_ne!(a, b, "different VP → different order");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let base = base_targets();
        for vp in [Ipv4Addr::new(192, 0, 2, 1), Ipv4Addr::new(203, 0, 113, 7)] {
            let mut shuffled = base.clone();
            shuffle_for_vp(&mut shuffled, vp);
            let mut sorted = shuffled;
            sorted.sort();
            assert_eq!(sorted, base, "no dropped or duplicated targets for {vp}");
        }
    }

    /// A three-router chain with routes to every loopback, plus two
    /// VPs entering at either end.
    fn testbed() -> (Network, Vec<VantagePoint>, Vec<Ipv4Addr>) {
        let mut topo = Topology::new();
        let asn = AsNumber(65_100);
        let routers: Vec<RouterId> = (0..3u8)
            .map(|i| {
                topo.add_router(
                    format!("c{i}"),
                    asn,
                    Vendor::Cisco,
                    Ipv4Addr::new(10, 255, 10, i + 1),
                )
            })
            .collect();
        for i in 0..2u8 {
            topo.add_link(
                routers[i as usize],
                Ipv4Addr::new(10, 10, i, 1),
                routers[i as usize + 1],
                Ipv4Addr::new(10, 10, i, 2),
                1,
            );
        }
        let loopbacks: Vec<Ipv4Addr> = routers.iter().map(|&r| topo.router(r).loopback).collect();
        let mut net = Network::new(topo);
        let spf = arest_topo::spf::DomainSpf::for_members(net.topo(), &routers);
        for &from in &routers {
            for (&to, &lo) in routers.iter().zip(&loopbacks) {
                if from == to {
                    continue;
                }
                if let Some((out_iface, next_router)) = spf.next_hop(from, to) {
                    net.plane_mut(from)
                        .install_route(Prefix::host(lo), Route { out_iface, next_router });
                }
            }
        }
        let vps = vec![
            VantagePoint {
                name: Arc::from("vp-a"),
                addr: Ipv4Addr::new(192, 0, 2, 1),
                gateway: routers[0],
            },
            VantagePoint {
                name: Arc::from("vp-b"),
                addr: Ipv4Addr::new(192, 0, 2, 2),
                gateway: routers[2],
            },
        ];
        (net, vps, loopbacks)
    }

    #[test]
    fn campaigns_are_identical_at_any_worker_count() {
        let (net, vps, loopbacks) = testbed();
        let lists = vec![loopbacks.clone(), loopbacks[..2].to_vec()];
        let config = CampaignConfig::default();
        let serial = run_campaigns(&net, &vps, &lists, &config, 1);
        for workers in [2, 4] {
            let parallel = run_campaigns(&net, &vps, &lists, &config, workers);
            assert_eq!(parallel, serial, "workers={workers}");
        }
        assert_eq!(serial.len(), 2);
        assert_eq!(serial[0].len(), vps.len() * loopbacks.len());
    }

    #[test]
    fn run_campaign_matches_batched_equivalent() {
        let (net, vps, loopbacks) = testbed();
        let config = CampaignConfig::default();
        let single = run_campaign(&net, &vps, &loopbacks, &config);
        let lists = vec![loopbacks];
        let batched = run_campaigns(&net, &vps, &lists, &config, 3);
        assert_eq!(batched[0], single);
    }

    #[test]
    fn traces_share_one_interned_vp_name_per_vp() {
        let (net, vps, loopbacks) = testbed();
        let traces = run_campaign(&net, &vps, &loopbacks, &CampaignConfig::default());
        for trace in &traces {
            let vp = vps.iter().find(|vp| vp.name == trace.vp).expect("known VP");
            assert!(
                Arc::ptr_eq(&trace.vp, &vp.name),
                "trace VP names must be interned, not per-trace copies"
            );
        }
    }

    #[test]
    fn empty_target_lists_yield_empty_campaigns() {
        let (net, vps, loopbacks) = testbed();
        let lists = vec![Vec::new(), loopbacks];
        let out = run_campaigns(&net, &vps, &lists, &CampaignConfig::default(), 2);
        assert!(out[0].is_empty());
        assert!(!out[1].is_empty());
    }
}
