//! The multi-vantage-point measurement driver.
//!
//! The paper probes each target list from 50 geographically spread
//! VPs, shuffling targets per VP (§5). This module reproduces that
//! schedule: every VP traces the same targets in a VP-specific order,
//! in parallel (one thread per VP, as the network is immutable during
//! a campaign).

use crate::reveal::trace_with_revelation;
use crate::trace::Trace;
use crate::tracer::TraceConfig;
use arest_simnet::Network;
use arest_topo::ids::RouterId;
use std::net::Ipv4Addr;

/// A measurement vantage point: a host address and the router its
/// probes enter the network through.
#[derive(Debug, Clone)]
pub struct VantagePoint {
    /// Human-readable name (e.g. "VM12-paris").
    pub name: String,
    /// The VP's source address.
    pub addr: Ipv4Addr,
    /// The first router that processes the VP's probes.
    pub gateway: RouterId,
}

/// Campaign configuration.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Per-trace configuration.
    pub trace: TraceConfig,
    /// Whether to run TNT revelation on every trace (the paper's
    /// setting) or plain Paris traceroute.
    pub reveal: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig { trace: TraceConfig::default(), reveal: true }
    }
}

/// Runs the campaign: every VP traces every target, with the target
/// order shuffled per VP (deterministically) to avoid looking like an
/// attack, exactly as §5 describes. Returns all traces, grouped by VP
/// in VP order.
pub fn run_campaign(
    net: &Network,
    vps: &[VantagePoint],
    targets: &[Ipv4Addr],
    config: &CampaignConfig,
) -> Vec<Trace> {
    let mut per_vp: Vec<Vec<Trace>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = vps
            .iter()
            .map(|vp| {
                scope.spawn(move |_| {
                    let mut order: Vec<Ipv4Addr> = targets.to_vec();
                    shuffle_for_vp(&mut order, vp.addr);
                    order
                        .into_iter()
                        .map(|dst| {
                            if config.reveal {
                                trace_with_revelation(
                                    net,
                                    &vp.name,
                                    vp.gateway,
                                    vp.addr,
                                    dst,
                                    &config.trace,
                                )
                            } else {
                                crate::tracer::trace_route(
                                    net,
                                    &vp.name,
                                    vp.gateway,
                                    vp.addr,
                                    dst,
                                    &config.trace,
                                )
                            }
                        })
                        .collect::<Vec<Trace>>()
                })
            })
            .collect();
        for handle in handles {
            // Surface a worker panic with its original payload instead
            // of wrapping it in a second, less informative one.
            match handle.join() {
                Ok(traces) => per_vp.push(traces),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    })
    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
    per_vp.into_iter().flatten().collect()
}

/// Deterministic per-VP Fisher–Yates shuffle keyed on the VP address.
fn shuffle_for_vp(targets: &mut [Ipv4Addr], vp_addr: Ipv4Addr) {
    let mut state = u64::from(u32::from(vp_addr)) | 1;
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        state
    };
    for i in (1..targets.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        targets.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_is_deterministic_and_vp_specific() {
        let base: Vec<Ipv4Addr> = (1..=16u8).map(|i| Ipv4Addr::new(10, 0, 0, i)).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        let mut c = base.clone();
        shuffle_for_vp(&mut a, Ipv4Addr::new(192, 0, 2, 1));
        shuffle_for_vp(&mut b, Ipv4Addr::new(192, 0, 2, 1));
        shuffle_for_vp(&mut c, Ipv4Addr::new(192, 0, 2, 2));
        assert_eq!(a, b, "same VP → same order");
        assert_ne!(a, c, "different VP → different order");
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(sorted, base, "shuffle is a permutation");
    }
}
