//! Instrumentation: cached handles into the global `arest-obs`
//! registry (probe budgets, revelation activity, pool scheduling).
//!
//! Handles register once inside the `LazyLock`; recording afterwards
//! is gate-checked relaxed atomics, free when `AREST_OBS` is off.

use arest_obs::{Counter, Gauge, Histogram, Tracer};
use std::sync::LazyLock;

/// The global registry's span tracer: campaign batches, stolen
/// (AS, VP) units, and individual traces open spans through this
/// handle (inert while `AREST_OBS` is off).
pub(crate) static TRACER: LazyLock<Tracer> = LazyLock::new(|| arest_obs::global().tracer());

pub(crate) struct Metrics {
    /// `tnt.traces` — Paris traceroutes started (revelation sub-traces
    /// included).
    pub(crate) traces: Counter,
    /// `tnt.probes` — UDP traceroute probes sent.
    pub(crate) probes: Counter,
    /// `tnt.pings` — ICMP echo requests sent (TTL fingerprinting).
    pub(crate) pings: Counter,
    /// `tnt.reveal.triggers` — hops whose hidden-hop estimate jumped
    /// (tunnel ending hops scheduled for revelation).
    pub(crate) reveal_triggers: Counter,
    /// `tnt.reveal.attempts` — revelation sub-traces launched.
    pub(crate) reveal_attempts: Counter,
    /// `tnt.reveal.revealed_hops` — interior hops spliced into traces.
    pub(crate) reveal_revealed_hops: Counter,
    /// `tnt.pool.batches` — `run_indexed` invocations.
    pub(crate) pool_batches: Counter,
    /// `tnt.pool.units` — work units scheduled across all batches.
    pub(crate) pool_units: Counter,
    /// `tnt.pool.queue_depth` — units currently waiting in the shared
    /// channel (a live level: back to zero once a batch drains).
    pub(crate) pool_queue_depth: Gauge,
    /// `tnt.pool.units_per_worker` — units each worker stole in one
    /// batch; the spread shows how well stealing balanced the load.
    pub(crate) pool_units_per_worker: Histogram,
}

pub(crate) static METRICS: LazyLock<Metrics> = LazyLock::new(|| {
    let registry = arest_obs::global();
    Metrics {
        traces: registry.counter("tnt.traces"),
        probes: registry.counter("tnt.probes"),
        pings: registry.counter("tnt.pings"),
        reveal_triggers: registry.counter("tnt.reveal.triggers"),
        reveal_attempts: registry.counter("tnt.reveal.attempts"),
        reveal_revealed_hops: registry.counter("tnt.reveal.revealed_hops"),
        pool_batches: registry.counter("tnt.pool.batches"),
        pool_units: registry.counter("tnt.pool.units"),
        pool_queue_depth: registry.gauge("tnt.pool.queue_depth"),
        pool_units_per_worker: registry.histogram("tnt.pool.units_per_worker"),
    }
});
