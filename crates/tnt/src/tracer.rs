//! Flow-stable probing and ICMP reply parsing.

use crate::trace::{Hop, Trace};
use arest_simnet::packet::{ProbeReply, ProbeSpec, TransportPayload};
use arest_simnet::Network;
use arest_topo::ids::RouterId;
use arest_wire::icmp::IcmpMessage;
use arest_wire::ipv4::Ipv4Packet;
use arest_wire::udp::UdpPacket;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Traceroute configuration.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Maximum probe TTL.
    pub max_ttl: u8,
    /// Consecutive silent hops after which the trace gives up.
    pub gap_limit: u8,
    /// The Paris flow tuple: (source port, destination port). Kept
    /// constant for the whole trace so per-flow load balancers pin the
    /// path; the probe identifier rides the UDP checksum instead.
    pub flow: (u16, u16),
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig { max_ttl: 32, gap_limit: 3, flow: (33_434, 33_434) }
    }
}

/// Runs one Paris traceroute (without revelation — see
/// [`crate::reveal`] for the full TNT behaviour).
pub fn trace_route(
    net: &Network,
    vp_name: &str,
    entry: RouterId,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    config: &TraceConfig,
) -> Trace {
    let metrics = &*crate::obs::METRICS;
    metrics.traces.inc();
    let mut hops = Vec::new();
    let mut reached = false;
    let mut silent_run = 0u8;

    for ttl in 1..=config.max_ttl {
        let ident = probe_ident(src, dst, ttl);
        let spec = ProbeSpec {
            entry,
            src,
            dst,
            ttl,
            transport: TransportPayload::Udp {
                src_port: config.flow.0,
                dst_port: config.flow.1,
                ident,
            },
        };
        metrics.probes.inc();
        let reply = net.probe(&spec);
        let hop = hop_from_reply(&reply, ttl, ident, src, dst);
        let responded = hop.responded();
        let done = hop.is_destination;
        hops.push(hop);
        if done {
            reached = true;
            break;
        }
        silent_run = if responded { 0 } else { silent_run + 1 };
        if silent_run >= config.gap_limit {
            break;
        }
    }

    Trace { vp: Arc::from(vp_name), src, dst, hops, reached }
}

/// Sends one ICMP echo request (used by TTL fingerprinting) and
/// returns `(reply address, reply IP TTL)` when the target answers.
pub fn ping(
    net: &Network,
    entry: RouterId,
    src: Ipv4Addr,
    dst: Ipv4Addr,
) -> Option<(Ipv4Addr, u8)> {
    crate::obs::METRICS.pings.inc();
    let spec = ProbeSpec {
        entry,
        src,
        dst,
        ttl: 64,
        transport: TransportPayload::Echo { ident: 0x7e57, seq: 1 },
    };
    match net.probe(&spec) {
        ProbeReply::EchoReply { from, reply_ttl, .. } => Some((from, reply_ttl)),
        _ => None,
    }
}

/// Deterministic per-probe identifier (survives in the quoted UDP
/// checksum; used to match replies to probes).
fn probe_ident(src: Ipv4Addr, dst: Ipv4Addr, ttl: u8) -> u16 {
    let mut h: u32 = 0x811c_9dc5;
    for b in src.octets().into_iter().chain(dst.octets()).chain([ttl]) {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    let ident = (h & 0xffff) as u16;
    if ident == 0 {
        1
    } else {
        ident
    }
}

/// Deterministic synthetic RTT: ~800 µs per forward hop plus jitter.
fn synth_rtt(forward_hops: u8, ident: u16) -> u32 {
    u32::from(forward_hops) * 800 + u32::from(ident % 397)
}

fn hop_from_reply(reply: &ProbeReply, ttl: u8, ident: u16, src: Ipv4Addr, dst: Ipv4Addr) -> Hop {
    let (from, raw, reply_ttl, forward_hops, is_destination) = match reply {
        ProbeReply::TimeExceeded { from, raw, reply_ttl, forward_hops } => {
            (*from, Some(raw.as_slice()), *reply_ttl, *forward_hops, false)
        }
        ProbeReply::DestUnreachable { from, raw, reply_ttl, forward_hops } => {
            (*from, Some(raw.as_slice()), *reply_ttl, *forward_hops, true)
        }
        ProbeReply::EchoReply { from, reply_ttl, forward_hops } => {
            (*from, None, *reply_ttl, *forward_hops, true)
        }
        ProbeReply::Silent(_) => return Hop::silent(ttl),
    };

    let mut hop = Hop {
        ttl,
        addr: Some(from),
        rtt_us: Some(synth_rtt(forward_hops, ident)),
        stack: None,
        quoted_ip_ttl: None,
        reply_ip_ttl: Some(reply_ttl),
        revealed: false,
        is_destination,
    };

    if let Some(raw) = raw {
        match IcmpMessage::parse(raw) {
            Ok(msg) => {
                if let Some(quoted) = msg.original_datagram() {
                    // Reject replies whose quote does not match our
                    // probe (the Paris consistency check).
                    if !quote_matches(quoted, ident, src, dst) {
                        return Hop::silent(ttl);
                    }
                    let ip = Ipv4Packet::new_unchecked(quoted);
                    hop.quoted_ip_ttl = Some(ip.ttl());
                }
                if let Some(ext) = msg.mpls_extension() {
                    hop.stack = Some(Arc::new(ext.stack.clone()));
                }
            }
            Err(_) => return Hop::silent(ttl),
        }
    }

    hop
}

/// Validates the quoted datagram against the probe we sent.
fn quote_matches(quoted: &[u8], ident: u16, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
    if quoted.len() < 28 {
        return false;
    }
    let ip = Ipv4Packet::new_unchecked(quoted);
    if ip.src_addr() != src || ip.dst_addr() != dst {
        return false;
    }
    let udp = UdpPacket::new_unchecked(&quoted[20..]);
    udp.checksum() == ident
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_ident_is_deterministic_and_nonzero() {
        let a = probe_ident(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8), 9);
        let b = probe_ident(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8), 9);
        assert_eq!(a, b);
        assert_ne!(a, 0);
        let c = probe_ident(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8), 10);
        assert_ne!(a, c, "per-ttl idents differ");
    }

    #[test]
    fn quote_mismatch_is_rejected() {
        // A quoted datagram for a different destination must not match.
        use arest_wire::ipv4::{Ipv4Repr, Protocol};
        let repr = Ipv4Repr {
            src_addr: Ipv4Addr::new(1, 1, 1, 1),
            dst_addr: Ipv4Addr::new(2, 2, 2, 2),
            protocol: Protocol::Udp,
            ttl: 1,
            ident: 0,
            payload_len: 8,
        };
        let mut quoted = vec![0u8; 28];
        repr.emit(&mut quoted).unwrap();
        assert!(!quote_matches(&quoted, 7, Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(9, 9, 9, 9)));
        assert!(!quote_matches(
            &quoted[..20],
            7,
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2)
        ));
    }

    #[test]
    fn synth_rtt_grows_with_hops() {
        assert!(synth_rtt(10, 5) > synth_rtt(2, 5));
    }
}
