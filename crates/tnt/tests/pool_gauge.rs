//! Regression test: the `tnt.pool.queue_depth` gauge drains back to
//! zero after every `pool::run_indexed` batch.
//!
//! The gauge is a live level — submit adds the batch size, each
//! dequeue subtracts one — so any asymmetry between the submit,
//! dequeue, and disconnect paths shows up as a residue after the
//! batch completes. This file holds a single test function in its own
//! process on purpose: it enables the process-global registry, which
//! would race other tests sharing the binary.

use arest_tnt::pool::run_indexed;

#[test]
fn queue_depth_gauge_drains_to_zero_after_run_indexed() {
    let registry = arest_obs::global();
    registry.set_enabled(true);
    let gauge = registry.gauge("tnt.pool.queue_depth");

    // A mix of shapes: sequential fast path (workers=1, and a
    // single-unit batch), small parallel batches, more workers than
    // units, and a batch large enough for real stealing interleavings.
    for (n, workers) in [(1usize, 4usize), (8, 1), (8, 4), (3, 8), (500, 4)] {
        let items: Vec<u64> = (0..n as u64).collect();
        let out = run_indexed(items, workers, &|idx, x: u64| {
            assert_eq!(idx as u64, x);
            x * 2
        });
        assert_eq!(out.len(), n);
        assert_eq!(
            gauge.get(),
            0,
            "queue depth must drain to zero after a batch (n={n}, workers={workers})"
        );
    }

    // Uneven unit cost exercises the steal paths harder; the gauge
    // must still balance.
    let out = run_indexed((0..64u64).collect(), 4, &|_, x| {
        if x % 16 == 0 {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        x
    });
    assert_eq!(out.len(), 64);
    assert_eq!(gauge.get(), 0, "queue depth must drain to zero under uneven unit cost");
}
