//! Exhaustive model checks of the worker pool's concurrency
//! invariants (`cargo test -p arest-tnt --features model-check`).
//!
//! Everything the pool leans on is modeled here: the channel shim's
//! mutex/condvar, the scoped workers, and the `pending` counter that
//! decides when the dynamic pool's Done cascade may start.

#![cfg(feature = "model-check")]

use arest_conc::atomic::{AtomicUsize, Ordering};
use arest_conc::model::Model;
use arest_tnt::pool::{run_dynamic, run_indexed};

/// Invariant: a unit injected by a running worker is never lost, no
/// matter where that worker is preempted between its `pending`
/// increment, the send, and its own decrement. The killer schedule —
/// the other worker deciding `pending == 0` while the injected unit is
/// in flight — must be unreachable.
#[test]
fn model_injected_units_never_lost_when_injector_preempted() {
    let report = Model::default().check(|| {
        let executed = AtomicUsize::new(0);
        run_dynamic(vec![1u8], 2, &|unit, injector| {
            executed.fetch_add(1, Ordering::Relaxed);
            if unit == 1 {
                injector.push(0);
            }
        });
        assert_eq!(executed.load(Ordering::Relaxed), 2, "the injected unit must run");
    });
    assert!(report.complete, "schedule space not exhausted in {} runs", report.runs);
}

/// Invariant: the dynamic pool terminates with every unit executed
/// when *both* workers inject — the Done cascade can only start after
/// the last injected unit's decrement.
#[test]
fn model_concurrent_injectors_all_units_run() {
    let report = Model::default().max_runs(400_000).check(|| {
        let executed = AtomicUsize::new(0);
        run_dynamic(vec![1u8, 1], 2, &|unit, injector| {
            executed.fetch_add(1, Ordering::Relaxed);
            if unit == 1 {
                injector.push(0);
            }
        });
        assert_eq!(executed.load(Ordering::Relaxed), 4, "both injected units must run");
    });
    assert!(report.complete, "schedule space not exhausted in {} runs", report.runs);
}

/// Invariant: `run_indexed` always returns every result in submission
/// order, whichever worker stole which unit and in whatever order the
/// results came back.
#[test]
fn model_run_indexed_merges_in_submission_order() {
    let report = Model::default().check(|| {
        let out = run_indexed(vec![10u8, 20], 2, &|idx, x| (idx, x));
        assert_eq!(out, vec![(0, 10), (1, 20)]);
    });
    assert!(report.complete, "schedule space not exhausted in {} runs", report.runs);
}
