//! Property proof that the columnar arena is lossless: for *arbitrary*
//! traces — silent hops, revealed hops, quoted-but-empty stacks, deep
//! entropy-bearing stacks, missing RTT/qTTL/reply-TTL fields —
//! `Trace → TraceArena → Trace` is the identity, and the zero-copy
//! views agree with the nested accessors along the way.

use arest_tnt::arena::TraceArena;
use arest_tnt::trace::{collect_addrs, Hop, Trace};
use arest_wire::mpls::{Label, LabelStack, Lse};
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::sync::Arc;

fn lse_strategy() -> impl Strategy<Value = Lse> {
    (0u32..=0xF_FFFF, any::<u8>(), any::<bool>(), any::<u8>()).prop_map(
        |(label, tc, bottom, ttl)| {
            let mut lse = Lse::new(Label::new_truncated(label), bottom, ttl);
            lse.tc = tc & 0x7;
            lse
        },
    )
}

fn stack_strategy() -> impl Strategy<Value = Option<Arc<LabelStack>>> {
    (prop::bool::weighted(0.6), prop::collection::vec(lse_strategy(), 0..5))
        .prop_map(|(quoted, entries)| quoted.then(|| Arc::new(LabelStack::from_entries(entries))))
}

fn hop_strategy() -> impl Strategy<Value = Hop> {
    (
        any::<u8>(),
        (prop::bool::weighted(0.8), any::<u32>())
            .prop_map(|(some, addr)| some.then(|| Ipv4Addr::from(addr))),
        prop::option::of(any::<u32>()),
        stack_strategy(),
        prop::option::of(any::<u8>()),
        prop::option::of(any::<u8>()),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(ttl, addr, rtt_us, stack, quoted_ip_ttl, reply_ip_ttl, revealed, is_destination)| {
                Hop {
                    ttl,
                    addr,
                    rtt_us,
                    stack,
                    quoted_ip_ttl,
                    reply_ip_ttl,
                    revealed,
                    is_destination,
                }
            },
        )
}

fn trace_strategy() -> impl Strategy<Value = Trace> {
    (
        0u8..5,
        any::<u32>(),
        any::<u32>(),
        prop::collection::vec(hop_strategy(), 0..12),
        any::<bool>(),
    )
        .prop_map(|(vp, src, dst, hops, reached)| Trace {
            vp: format!("vp{vp}").into(),
            src: Ipv4Addr::from(src),
            dst: Ipv4Addr::from(dst),
            hops,
            reached,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arena_round_trip_is_identity(traces in prop::collection::vec(trace_strategy(), 0..8)) {
        let arena = TraceArena::from_traces(&traces);
        prop_assert_eq!(arena.len(), traces.len());
        prop_assert_eq!(arena.hop_count(), traces.iter().map(|t| t.hops.len()).sum::<usize>());
        prop_assert_eq!(&arena.to_traces(), &traces);

        // Views agree with the nested accessors hop for hop.
        for (view, trace) in arena.iter().zip(&traces) {
            for (hv, hop) in view.hops().zip(&trace.hops) {
                prop_assert_eq!(hv.addr(), hop.addr);
                prop_assert_eq!(hv.stack_depth(), hop.stack_depth());
                prop_assert_eq!(hv.has_stack(), hop.stack.is_some());
                prop_assert_eq!(
                    hv.lses().map(<[Lse]>::to_vec),
                    hop.stack.as_ref().map(|s| s.entries().to_vec())
                );
            }
        }
    }

    #[test]
    fn arena_collect_addrs_matches_nested(traces in prop::collection::vec(trace_strategy(), 0..8)) {
        let arena = TraceArena::from_traces(&traces);
        let (nested_addrs, nested_te) = collect_addrs(&traces);
        let (addrs, te) = arena.collect_addrs();
        prop_assert_eq!(&addrs, &nested_addrs);
        let te_of: Vec<u8> = addrs.iter().map(|a| nested_te[a]).collect();
        prop_assert_eq!(te, te_of);
    }
}
