//! Regression test: the `tnt.pool.queue_depth` gauge drains back to
//! zero on the **panic-propagation** paths of both pool entry points.
//!
//! A worker panic unwinds the scope before the normal drain runs, so
//! any units still queued at that moment would stay counted forever —
//! poisoning every later reading of the gauge. The drain must be tied
//! to scope exit itself (a drop guard), not to the happy path.
//!
//! This file holds a single test function in its own process on
//! purpose: it enables the process-global registry, which would race
//! other tests sharing the binary.

use arest_tnt::pool::{run_dynamic, run_indexed};
use std::panic;

#[test]
fn queue_depth_gauge_drains_to_zero_when_workers_panic() {
    let registry = arest_obs::global();
    registry.set_enabled(true);
    let gauge = registry.gauge("tnt.pool.queue_depth");

    // run_indexed: every unit panics, so with two workers both die
    // with units still queued and nobody left to pull them.
    let result = panic::catch_unwind(|| {
        run_indexed((0..16u64).collect(), 2, &|_, x: u64| -> u64 { panic!("boom {x}") })
    });
    assert!(result.is_err(), "the worker panic must reach the caller");
    assert_eq!(gauge.get(), 0, "run_indexed all-workers-panic must drain the gauge");

    // run_indexed: a single poisoned unit among slow ones, so the
    // surviving worker is mid-unit when the panicking one dies.
    let result = panic::catch_unwind(|| {
        run_indexed((0..16u64).collect(), 2, &|_, x: u64| {
            if x == 0 {
                panic!("boom");
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
            x
        })
    });
    assert!(result.is_err(), "the worker panic must reach the caller");
    assert_eq!(gauge.get(), 0, "run_indexed single-panic must drain the gauge");

    // run_dynamic, parallel path: the first unit panics while the
    // rest (and an injected follow-up) are still queued.
    let result = panic::catch_unwind(|| {
        run_dynamic((0..16u64).collect(), 2, &|x, injector| {
            if x == 1 {
                injector.push(99);
            }
            assert_ne!(x, 0, "boom");
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
    });
    assert!(result.is_err(), "the worker panic must reach the caller");
    assert_eq!(gauge.get(), 0, "run_dynamic parallel panic must drain the gauge");

    // run_dynamic, sequential fast path: the panic aborts the
    // in-thread pull loop with units still queued.
    let result = panic::catch_unwind(|| {
        run_dynamic((0..8u64).collect(), 1, &|x, _| assert_ne!(x, 2, "boom"));
    });
    assert!(result.is_err(), "the panic must reach the caller");
    assert_eq!(gauge.get(), 0, "run_dynamic sequential panic must drain the gauge");
}
