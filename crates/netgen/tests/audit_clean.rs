//! Audit-after-build gate: whatever the generator wires up — LDP
//! chains, SR domains, TE policies, interworking stitches — must pass
//! `arest-audit`'s static analysis with zero errors.
//!
//! Lives as an integration test (not a unit test) so the `Internet`
//! type audited is the same lib instance `arest-audit` links against;
//! a unit test would compile `arest-netgen` a second time and the
//! dev-dependency cycle would see two distinct `Internet` types.

use arest_netgen::internet::{generate, GenConfig};

#[test]
fn generated_internet_is_audit_clean() {
    let internet = generate(&GenConfig::tiny());
    let report = arest_audit::audit_internet(&internet);
    // Warnings are expected — the generator deliberately parks some
    // SRGBs inside the platform label range — but nothing may rise to
    // error severity.
    assert!(report.is_clean(), "{}", report.to_text());
}

#[test]
fn audit_flags_a_sabotaged_link() {
    // Downing a transit link invalidates every LFIB entry that
    // egresses over it: the audit must notice the broken next hops.
    let mut internet = generate(&GenConfig::tiny());
    let sabotaged = {
        let topo = internet.net.topo();
        let mut links = (0..topo.link_count())
            .map(|i| arest_topo::ids::LinkId(u32::try_from(i).expect("fits")));
        links
            .find(|&l| {
                let link = topo.link(l);
                let owner = topo.iface(link.endpoints[0]).router;
                // A link some LFIB actually uses: cheapest proxy is
                // "owner has at least one LFIB entry".
                internet.net.plane(owner).lfib.iter().any(|(_, action)| {
                    matches!(
                        action,
                        arest_mpls::tables::LfibAction::Swap { out_iface, .. }
                        | arest_mpls::tables::LfibAction::PopForward { out_iface, .. }
                        if topo.iface(*out_iface).link == Some(l)
                    )
                })
            })
            .expect("some link carries label traffic")
    };
    internet.net.topo_mut().set_link_up(sabotaged, false);
    let report = arest_audit::audit_internet(&internet);
    assert!(!report.is_clean(), "downed link must break the audit");
    assert!(report.by_check(arest_audit::Check::BrokenNextHop).count() > 0, "{}", report.to_text());
}
