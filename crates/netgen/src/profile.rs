//! Per-AS deployment profiles.
//!
//! A profile translates a Table 5 row into the operational knobs the
//! builder deploys. The derivations encode the paper's *observations*
//! so the reproduction exhibits the same shapes for the same causal
//! reasons:
//!
//! * confirmed deployers actually run SR over part of their core;
//!   Microsoft (#15) and ESnet (#46) run it widest (§7.1), ESnet with
//!   no LDP at all and a dark management plane (§6.1: no hop answered
//!   fingerprinting) plus service-SID policies (§6.2);
//! * stubs hide their tunnels (Appendix C: mostly invisible/implicit;
//!   #2, #3, #16 expose no explicit tunnels at all; #44 ≈ 5 %);
//! * #31, #38, #40, #55 have unusually good fingerprint coverage and
//!   thus carry the CVR/LSVR/LVR flags (§6.2);
//! * ~30 % of SR operators customize their SRGB (§3), making CVR
//!   impossible there while CO keeps working;
//! * unconfirmed ASes mostly run classic MPLS with VPN-style 2-label
//!   stacks — the source of the LSO-dominant detections (§6.2) —
//!   while a minority secretly run SR.

use crate::catalog::{AsProfile, AsType, Confirmation};
use arest_topo::vendor::Vendor;

/// The operational knobs for one generated AS.
#[derive(Debug, Clone)]
pub struct DeploymentProfile {
    /// Router count (scaled from discovered addresses).
    pub routers: usize,
    /// Number of border routers facing the rest of the Internet.
    pub borders: usize,
    /// Fraction of routers inside the SR domain (0 = no SR).
    pub sr_share: f64,
    /// Fraction of routers inside the classic LDP domain.
    pub ldp_share: f64,
    /// Per-router probability of `ttl-propagate`.
    pub p_propagate: f64,
    /// Per-router probability of implementing RFC 4950.
    pub p_rfc4950: f64,
    /// Per-router probability of answering echo requests.
    pub echo_rate: f64,
    /// Per-router probability of SNMPv3 exposure.
    pub snmp_rate: f64,
    /// The domain SRGB base (16,000 = the Table 1 default; custom
    /// bases defeat vendor-range flags but not sequence flags).
    pub srgb_base: u32,
    /// Penultimate-hop popping for SR prefix SIDs.
    pub php: bool,
    /// Fraction of LDP FECs carrying VPN-style 2-label stacks.
    pub vpn_stack_share: f64,
    /// Fraction of SR FECs steered by 2-segment TE policies.
    pub te_policy_share: f64,
    /// Fraction of SR FECs carrying service SIDs (unshrinking
    /// stacks, the ESnet/Execulink signature).
    pub service_sid_share: f64,
    /// Customer /24 prefixes attached to edge routers.
    pub customer_prefixes: usize,
    /// Vendor mix as (vendor, weight) pairs.
    pub vendor_mix: Vec<(Vendor, f64)>,
}

/// A deterministic per-AS hash in `[0, 1)`, used for the
/// "30 % of unconfirmed ASes secretly deploy SR"-style draws.
fn unit_hash(asn: u32, salt: u32) -> f64 {
    let mut h = u64::from(asn).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ u64::from(salt) << 32;
    h ^= h >> 31;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 29;
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Derives the deployment profile for one catalog entry.
///
/// `scale` multiplies the paper's discovered-address counts before
/// they are turned into router counts; the default experiment profile
/// uses a small scale so the whole Internet fits in memory while
/// preserving relative AS sizes.
///
/// `adoption` in `[0, 1]` rewinds the SR deployment clock: it scales
/// each deployer's SR footprint and the probability that unconfirmed
/// ASes deploy at all, enabling the longitudinal what-if studies the
/// paper leaves as future work. `1.0` reproduces the 2025 snapshot.
pub fn profile_for(entry: &AsProfile, scale: f64, adoption: f64) -> DeploymentProfile {
    let claimed = entry.confirmation != Confirmation::None;
    let adoption = adoption.clamp(0.0, 1.0);

    // Router count: roughly one router per four discovered addresses,
    // scaled, clamped to keep the biggest ASes tractable. Tiny ASes
    // stay tiny so the <100-address exclusion rule reproduces itself.
    let scaled_ips = entry.ips_discovered as f64 * scale;
    let mut routers = ((scaled_ips / 4.0).round() as usize).clamp(1, 200);
    if entry.ips_discovered == 0 {
        routers = 1; // unreachable AS: a lone unreachable router
    }
    // ESnet is small in addresses but is the ground-truth reference:
    // keep enough routers for meaningful segment statistics.
    if entry.id == 46 {
        routers = routers.max(20);
    }
    // Analyzed claimants need a core deep enough that label sequences
    // can span multiple distinct hops — the paper detected SR in all
    // of them except the tunnel-hiding four.
    if claimed && entry.analyzed() {
        routers = routers.max(24);
    }

    let borders = (routers / 12).clamp(1, 4);

    // SR share by confirmation and role (§7.1).
    // Shares are deliberately modest: the paper finds SR-related
    // interfaces are <= 10 % of observed addresses for most ASes
    // (Fig. 10b), with Microsoft and ESnet as outliers.
    let mut sr_share: f64 = if claimed {
        match entry.astype {
            AsType::Stub => 0.30,
            AsType::Content => 0.30,
            AsType::Transit => 0.28,
            AsType::Tier1 => 0.22,
        }
    } else if unit_hash(entry.asn, 1) < 0.30 * adoption && entry.astype != AsType::Stub {
        0.20 // a hidden deployer
    } else {
        0.0
    };
    sr_share *= adoption;
    match entry.id {
        15 => sr_share = 0.60 * adoption, // Microsoft: ~50 % of interfaces SR
        46 => sr_share = 1.0 * adoption,  // ESnet: SR everywhere
        28 | 58 => sr_share = 0.55 * adoption, // Bell Canada / Arelion
        // Hidden deployers the paper's results imply: Google and
        // Amazon show LSO alongside strong flags (§6.3); Telecom
        // Italia and Hurricane Electric are top CVR/LSVR/LVR
        // contributors (§6.2) despite no external confirmation.
        14 | 19 | 38 | 40 => sr_share = sr_share.max(0.30 * adoption),
        _ => {}
    }

    // LDP share: the non-SR remainder mostly runs classic MPLS in
    // Content/Transit/Tier-1; full-SR ASes keep none.
    // LDP islands stay smaller than the SR core where both exist
    // (Fig. 12: "smaller LDP islands interconnected by larger SR
    // clouds"); ASes without SR keep a larger classic-MPLS footprint.
    let ldp_share = if sr_share >= 1.0 {
        0.0
    } else if sr_share > 0.0 {
        0.30
    } else {
        match entry.astype {
            AsType::Stub => 0.5,
            _ => 0.55,
        }
    };

    // Tunnel visibility (Appendix C): default mostly explicit;
    // stubs mostly hidden; per-AS specials.
    let (mut p_propagate, mut p_rfc4950) = match entry.astype {
        // Stubs implement RFC 4950 like everyone else but rarely
        // propagate TTLs into their tunnels: mostly invisible paths
        // with a modest explicit share (Appendix C, Fig. 13).
        AsType::Stub => (0.35, 0.90),
        _ => (0.88, 0.92),
    };
    match entry.id {
        2 | 3 | 16 => p_rfc4950 = 0.0, // no explicit tunnels at all
        44 => {
            p_propagate = 0.25; // Midco: ~5 % explicit paths
            p_rfc4950 = 0.25;
        }
        46 => {
            p_propagate = 1.0; // ESnet: fully explicit
            p_rfc4950 = 1.0;
        }
        // The implied hidden deployers carry vendor-range flags in the
        // paper (§6.2), which requires explicit tunnels.
        14 | 19 | 38 | 40 => {
            p_propagate = 1.0;
            p_rfc4950 = 1.0;
        }
        // Every other confirmed deployer showed detectable (explicit)
        // tunnels in the paper's campaign — their fleet templates
        // implement RFC 4950 and propagate TTLs at the ingress.
        _ if claimed => {
            p_rfc4950 = 1.0;
            p_propagate = 1.0;
        }
        _ => {}
    }

    // Management plane: fingerprinting coverage (§5, Appendix C).
    // Echo responsiveness is deliberately low: the paper fingerprints
    // only ~23 % of SR hops, which is what keeps CVR rarer than CO.
    let (mut echo_rate, mut snmp_rate) = (0.30, 0.04);
    match entry.id {
        31 | 38 | 40 | 55 => snmp_rate = 0.35, // the CVR/LSVR/LVR contributors
        46 => {
            echo_rate = 0.0; // ESnet answers nothing
            snmp_rate = 0.0;
        }
        _ => {}
    }

    // SRGB customization: ~30 % of SR operators move off the default
    // (§3); interoperability-driven, so still within low label space.
    let srgb_base = if sr_share > 0.0 && unit_hash(entry.asn, 2) < 0.30 && entry.id != 46 {
        28_000
    } else {
        16_000
    };

    // Stack-producing features.
    let vpn_stack_share = match entry.astype {
        AsType::Stub => 0.10,
        AsType::Content => 0.28,
        AsType::Transit | AsType::Tier1 => 0.28,
    };
    // Traffic engineering is a primary SR use case (survey Fig. 5b:
    // ~46 % of SR operators) — TE policies are what pushes multi-label
    // stacks into SR contexts (Fig. 9a).
    let te_policy_share = if sr_share > 0.0 { 0.35 } else { 0.0 };
    let service_sid_share = match entry.id {
        46 | 52 => 0.10, // ESnet / Execulink: unshrinking stacks
        14 | 19 => 0.06, // Google / Amazon: LSO alongside strong flags
        _ => 0.0,
    };

    // Vendor mix, echoing the survey (Fig. 5a): Cisco and Juniper
    // dominate; the fingerprint-rich ASes skew further toward
    // Cisco/Huawei so TTL evidence lands on vendor ranges.
    let vendor_mix = match entry.id {
        31 | 38 | 40 | 55 => vec![
            (Vendor::Cisco, 0.55),
            (Vendor::Huawei, 0.20),
            (Vendor::Juniper, 0.15),
            (Vendor::Nokia, 0.10),
        ],
        _ => vec![
            (Vendor::Cisco, 0.42),
            (Vendor::Juniper, 0.28),
            (Vendor::Nokia, 0.12),
            (Vendor::Arista, 0.08),
            (Vendor::Huawei, 0.06),
            (Vendor::Linux, 0.04),
        ],
    };

    DeploymentProfile {
        routers,
        borders,
        sr_share,
        ldp_share,
        p_propagate,
        p_rfc4950,
        echo_rate,
        snmp_rate,
        srgb_base,
        // SR prefix SIDs run without PHP: explicit-null retention is
        // the common SR-OAM configuration, it keeps the segment label
        // visible end to end, and it lets RFC 8661 borders stitch
        // SR→LDP without an unlabelled gap at the junction.
        php: false,
        vpn_stack_share,
        te_policy_share,
        service_sid_share,
        customer_prefixes: (routers / 3).clamp(1, 40),
        vendor_mix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{by_id, CATALOG};

    const SCALE: f64 = 0.05;

    #[test]
    fn esnet_profile_matches_ground_truth_conditions() {
        let p = profile_for(by_id(46).unwrap(), SCALE, 1.0);
        assert_eq!(p.sr_share, 1.0, "SR everywhere");
        assert_eq!(p.ldp_share, 0.0, "no traditional MPLS");
        assert_eq!(p.echo_rate, 0.0, "no fingerprinting answers");
        assert_eq!(p.snmp_rate, 0.0);
        assert_eq!((p.p_propagate, p.p_rfc4950), (1.0, 1.0), "explicit tunnels");
        assert!(p.service_sid_share > 0.0, "unshrinking stacks");
        assert!(!p.php, "stacks persist to the destination");
        assert!(p.routers >= 18);
        assert_eq!(p.srgb_base, 16_000);
    }

    #[test]
    fn microsoft_runs_the_widest_sr() {
        let ms = profile_for(by_id(15).unwrap(), SCALE, 1.0);
        for entry in CATALOG.iter().filter(|e| e.id != 15 && e.id != 46) {
            let other = profile_for(entry, SCALE, 1.0);
            assert!(ms.sr_share >= other.sr_share, "#{} out-deploys Microsoft", entry.id);
        }
    }

    #[test]
    fn no_explicit_trio_has_zero_rfc4950() {
        for id in [2u8, 3, 16] {
            let p = profile_for(by_id(id).unwrap(), SCALE, 1.0);
            assert_eq!(p.p_rfc4950, 0.0, "#{id}");
        }
    }

    #[test]
    fn fingerprint_rich_ases_have_high_snmp() {
        for id in [31u8, 38, 40, 55] {
            let p = profile_for(by_id(id).unwrap(), SCALE, 1.0);
            assert!(p.snmp_rate > 0.3, "#{id}");
        }
    }

    #[test]
    fn stubs_hide_their_tunnels() {
        let stub = profile_for(by_id(7).unwrap(), SCALE, 1.0);
        let transit = profile_for(by_id(35).unwrap(), SCALE, 1.0);
        assert!(stub.p_propagate < transit.p_propagate);
        assert!(stub.p_rfc4950 < transit.p_rfc4950);
    }

    #[test]
    fn router_counts_scale_and_preserve_order() {
        let small = profile_for(by_id(47).unwrap(), SCALE, 1.0); // Aruba, 346 IPs
        let large = profile_for(by_id(58).unwrap(), SCALE, 1.0); // Arelion, 339k IPs
        assert!(small.routers < large.routers);
        assert_eq!(large.routers, 200, "clamped at the cap");
    }

    #[test]
    fn about_30_percent_of_sr_ases_customize_srgb() {
        let sr_ases: Vec<_> = CATALOG
            .iter()
            .map(|e| profile_for(e, SCALE, 1.0))
            .filter(|p| p.sr_share > 0.0)
            .collect();
        let custom = sr_ases.iter().filter(|p| p.srgb_base != 16_000).count();
        let share = custom as f64 / sr_ases.len() as f64;
        assert!(share > 0.1 && share < 0.5, "custom-SRGB share {share}");
    }

    #[test]
    fn profiles_are_deterministic() {
        let a = profile_for(by_id(19).unwrap(), SCALE, 1.0);
        let b = profile_for(by_id(19).unwrap(), SCALE, 1.0);
        assert_eq!(a.sr_share, b.sr_share);
        assert_eq!(a.srgb_base, b.srgb_base);
    }

    #[test]
    fn adoption_rewinds_the_deployment_clock() {
        for entry in CATALOG.iter() {
            let now = profile_for(entry, SCALE, 1.0);
            let early = profile_for(entry, SCALE, 0.4);
            let none = profile_for(entry, SCALE, 0.0);
            assert!(early.sr_share <= now.sr_share, "#{}", entry.id);
            assert_eq!(none.sr_share, 0.0, "#{}: adoption 0 means no SR", entry.id);
        }
        // ESnet at half adoption runs SR on half its core.
        let esnet = profile_for(by_id(46).unwrap(), SCALE, 0.5);
        assert!((esnet.sr_share - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unconfirmed_stubs_never_deploy_sr() {
        for entry in CATALOG
            .iter()
            .filter(|e| e.astype == AsType::Stub && e.confirmation == Confirmation::None)
        {
            assert_eq!(profile_for(entry, SCALE, 1.0).sr_share, 0.0, "#{}", entry.id);
        }
    }
}
