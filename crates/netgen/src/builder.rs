//! Builds one AS: topology, control planes, and configuration.
//!
//! Generation is two-phase because all ASes share one [`Topology`]
//! (the Internet is a single graph):
//!
//! 1. [`plan_as`] adds the AS's routers and links to the topology and
//!    records the plan — BFS order, borders, SR/LDP membership, the
//!    SR/LDP junction, customer prefixes;
//! 2. [`deploy_as`] (after the whole graph exists and the
//!    [`Network`] wraps it) compiles and installs the control planes:
//!    LDP with optional VPN-style stacked FECs, the SR domain with
//!    mapping-server SIDs and LDP mirroring for interworking, TE and
//!    service-SID policies, visibility and management-plane knobs.

use crate::catalog::AsProfile;
use crate::profile::DeploymentProfile;
use arest_mpls::ldp::{LdpDomain, LdpFec};
use arest_mpls::pool::DynamicLabelPool;
use arest_mpls::tables::{LfibAction, PushInstruction};
use arest_simnet::Network;
use arest_sr::block::LabelBlock;
use arest_sr::domain::{SrDomain, SrDomainSpec, SrNodeConfig};
use arest_sr::interworking::{mapping_server_sids, mirrored_ldp_fecs};
use arest_sr::policy::SrPolicy;
use arest_sr::sid::{PrefixSidSpec, Segment, SidIndex};
use arest_topo::graph::Topology;
use arest_topo::ids::{AsNumber, RouterId};
use arest_topo::prefix::Prefix;
use arest_topo::spf::DomainSpf;
use arest_topo::vendor::Vendor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::Ipv4Addr;

/// The per-AS plan produced by phase 1.
#[derive(Debug, Clone)]
pub struct AsPlan {
    /// The catalog row this AS instantiates.
    pub entry: AsProfile,
    /// Its deployment profile.
    pub profile: DeploymentProfile,
    /// The ASN as a typed id.
    pub asn: AsNumber,
    /// Routers in creation order.
    pub routers: Vec<RouterId>,
    /// Routers in BFS order from the first border.
    pub bfs: Vec<RouterId>,
    /// Border routers facing the rest of the Internet.
    pub borders: Vec<RouterId>,
    /// SR domain members (BFS prefix).
    pub sr_members: Vec<RouterId>,
    /// Classic LDP domain members.
    pub ldp_members: Vec<RouterId>,
    /// The SR/LDP junction router, when both domains exist.
    pub junction: Option<RouterId>,
    /// Customer /24 prefixes and their anchor (edge) routers.
    pub customers: Vec<(Prefix, RouterId)>,
    /// The AS's infrastructure block (links + loopbacks).
    pub infra_block: Prefix,
    /// The aggregate covering all customer prefixes.
    pub customer_block: Prefix,
}

/// Phase 1: generate the AS topology into `topo`.
pub fn plan_as(
    topo: &mut Topology,
    entry: &AsProfile,
    profile: DeploymentProfile,
    seed: u64,
) -> AsPlan {
    plan_as_replica(topo, entry, profile, seed, 0)
}

/// [`plan_as`] for catalog replica `replica` (the
/// `GenConfig::catalog_scale` axis). Replica 0 is byte-identical to
/// [`plan_as`]; replica `r` shifts the AS's address plan into disjoint
/// space — infrastructure under `10+r.<id>/16`, customers under
/// `100+r.<64+id>/16` — so replicas never collide with each other, the
/// VP fabric (172.20/14), the transit links (192.168/16), or the VP
/// sources (198.18/15). The caller supplies a replica-unique
/// `entry.asn`; the per-AS RNG streams key off it, so each replica
/// grows its own topology rather than a copy.
pub fn plan_as_replica(
    topo: &mut Topology,
    entry: &AsProfile,
    profile: DeploymentProfile,
    seed: u64,
    replica: u8,
) -> AsPlan {
    assert!(replica < 64, "catalog replica {replica} out of the address plan's range");
    let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(entry.asn) << 8));
    let asn = AsNumber(entry.asn);
    let id = entry.id;
    let n = profile.routers;
    let infra_octet = 10 + replica;
    let customer_octet = 100 + replica;

    // Routers with vendors drawn from the mix; loopbacks in
    // 10+r.<id>.255.0/24.
    let routers: Vec<RouterId> = (0..n)
        .map(|i| {
            let vendor = draw_vendor(&profile.vendor_mix, &mut rng);
            topo.add_router(
                format!("{}-r{i}", entry.name.to_lowercase().replace(' ', "-")),
                asn,
                vendor,
                Ipv4Addr::new(infra_octet, id, 255, (i + 1) as u8),
            )
        })
        .collect();

    // Link fabric: a random tree plus chords; addresses allocated
    // pairwise from 10+r.<id>.0.0/16 (byte 255 reserved for loopbacks).
    let mut link_counter: u32 = 0;
    let alloc_pair = |counter: &mut u32| {
        let c = *counter;
        *counter += 1;
        let third = (c / 127) as u8;
        assert!(third < 255, "link address space exhausted in AS#{id}");
        let fourth = ((c % 127) * 2) as u8;
        (
            Ipv4Addr::new(infra_octet, id, third, fourth),
            Ipv4Addr::new(infra_octet, id, third, fourth + 1),
        )
    };
    let mut linked: HashSet<(RouterId, RouterId)> = HashSet::new();
    let add_link = |topo: &mut Topology,
                    a: RouterId,
                    b: RouterId,
                    rng: &mut StdRng,
                    counter: &mut u32,
                    linked: &mut HashSet<(RouterId, RouterId)>| {
        let key = (a.min(b), a.max(b));
        if a == b || !linked.insert(key) {
            return;
        }
        let (addr_a, addr_b) = alloc_pair(counter);
        let cost = rng.random_range(1..=3);
        topo.add_link(a, addr_a, b, addr_b, cost);
    };
    // Chain-biased tree: real ISP backbones have multi-hop depth, and
    // AReST's sequence flags need SR paths several labelled hops long.
    for i in 1..n {
        let parent = if rng.random_bool(0.65) { i - 1 } else { rng.random_range(0..i) };
        add_link(topo, routers[parent], routers[i], &mut rng, &mut link_counter, &mut linked);
    }
    for _ in 0..n / 6 {
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        add_link(topo, routers[a], routers[b], &mut rng, &mut link_counter, &mut linked);
    }

    // BFS order from router 0; the prefix is connected by construction.
    let bfs = bfs_order(topo, routers[0], asn);

    // SR members: the BFS prefix. LDP: grown from the junction across
    // the non-SR remainder (connected by construction of the BFS).
    let sr_count = (n as f64 * profile.sr_share).round() as usize;
    let sr_members: Vec<RouterId> = bfs.iter().copied().take(sr_count).collect();
    let sr_set: HashSet<RouterId> = sr_members.iter().copied().collect();
    let ldp_count = (n as f64 * profile.ldp_share).round() as usize;
    let (ldp_members, junction) = if ldp_count >= 2 && sr_count > 0 && sr_count < n {
        // Junction: the last SR member with a non-SR neighbour.
        let junction = sr_members
            .iter()
            .rev()
            .find(|&&r| topo.adjacencies(r).any(|(_, _, _, rem, _)| !sr_set.contains(&rem)))
            .copied();
        match junction {
            Some(j) => {
                let mut members = grow_from(topo, j, asn, &sr_set, ldp_count + 1);
                if members.len() < 2 {
                    members.clear();
                }
                (members, Some(j))
            }
            None => (Vec::new(), None),
        }
    } else if sr_count == 0 && ldp_count >= 2 {
        (bfs.iter().copied().take(ldp_count).collect(), None)
    } else {
        (Vec::new(), None)
    };

    // Borders: BFS-first routers; with interworking, the junction-side
    // of the network gets its own entry point so LDP→SR chains are
    // observable.
    let mut borders: Vec<RouterId> = bfs.iter().copied().take(profile.borders).collect();
    if let Some(j) = junction {
        if let Some(ldp_edge) = ldp_members.iter().rev().find(|&&r| r != j) {
            if !borders.contains(ldp_edge) {
                borders.push(*ldp_edge);
            }
        }
    }

    // Customer prefixes: anchored mostly deep inside the SR domain
    // (full-SR tunnels dominate, §7.2), some on LDP routers
    // (interworking), and the rest on plain edge routers. Picking from
    // the *tail* of each domain keeps tunnels several hops long.
    let pick_tail = |members: &[RouterId], k: usize| -> Option<RouterId> {
        if members.is_empty() {
            return None;
        }
        let window = members.len().div_ceil(2);
        Some(members[members.len() - 1 - (k % window)])
    };
    let customers: Vec<(Prefix, RouterId)> = (0..profile.customer_prefixes)
        .map(|k| {
            let draw: f64 = rng.random_range(0.0..1.0);
            let anchor = if draw < 0.88 {
                pick_tail(&sr_members, k).or_else(|| pick_tail(&ldp_members, k))
            } else if draw < 0.94 {
                pick_tail(&ldp_members, k).or_else(|| pick_tail(&sr_members, k))
            } else {
                None
            }
            .unwrap_or_else(|| bfs[bfs.len() - 1 - (k % bfs.len().div_ceil(3))]);
            let prefix = Prefix::new(Ipv4Addr::new(customer_octet, 64 + id, k as u8, 0), 24)
                .expect("/24 under 100.64/10");
            (prefix, anchor)
        })
        .collect();

    AsPlan {
        entry: *entry,
        profile,
        asn,
        routers,
        bfs,
        borders,
        sr_members,
        ldp_members,
        junction,
        customers,
        infra_block: Prefix::new(Ipv4Addr::new(infra_octet, id, 0, 0), 16).expect("/16"),
        customer_block: Prefix::new(Ipv4Addr::new(customer_octet, 64 + id, 0, 0), 16).expect("/16"),
    }
}

fn draw_vendor(mix: &[(Vendor, f64)], rng: &mut StdRng) -> Vendor {
    let total: f64 = mix.iter().map(|(_, w)| w).sum();
    let mut draw = rng.random_range(0.0..total);
    for (vendor, weight) in mix {
        if draw < *weight {
            return *vendor;
        }
        draw -= weight;
    }
    mix.last().map_or(Vendor::Cisco, |(v, _)| *v)
}

fn bfs_order(topo: &Topology, start: RouterId, asn: AsNumber) -> Vec<RouterId> {
    let mut order = vec![start];
    let mut seen: HashSet<RouterId> = [start].into();
    let mut queue: VecDeque<RouterId> = [start].into();
    while let Some(r) = queue.pop_front() {
        for (_, _, _, remote, _) in topo.adjacencies(r) {
            if topo.router(remote).asn == asn && seen.insert(remote) {
                order.push(remote);
                queue.push_back(remote);
            }
        }
    }
    order
}

/// BFS from `start` over routers of `asn` that are not in `excluded`
/// (except `start` itself), up to `limit` members.
fn grow_from(
    topo: &Topology,
    start: RouterId,
    asn: AsNumber,
    excluded: &HashSet<RouterId>,
    limit: usize,
) -> Vec<RouterId> {
    let mut order = vec![start];
    let mut seen: HashSet<RouterId> = [start].into();
    let mut queue: VecDeque<RouterId> = [start].into();
    while let Some(r) = queue.pop_front() {
        if order.len() >= limit {
            break;
        }
        for (_, _, _, remote, _) in topo.adjacencies(r) {
            if order.len() >= limit {
                break;
            }
            if topo.router(remote).asn == asn && !excluded.contains(&remote) && seen.insert(remote)
            {
                order.push(remote);
                queue.push_back(remote);
            }
        }
    }
    order
}

/// Label-allocation facts recorded at deploy time for `arest-audit`.
///
/// The assembled [`arest_simnet::Network`] keeps only compiled
/// LFIB/FTN tables; the SRGB/SRLB configuration and the dynamic-pool
/// state that produced them are gone by the time an auditor looks.
/// This record preserves exactly what the label-space checks need.
#[derive(Debug, Clone, Default)]
pub struct AsLabelRecord {
    /// Per SR member, its configured SRGB.
    pub srgbs: HashMap<RouterId, LabelBlock>,
    /// Per SR member with a separate local block, its SRLB.
    pub srlbs: HashMap<RouterId, LabelBlock>,
    /// Per router, the floor of its dynamic label pool.
    pub pool_floors: HashMap<RouterId, u32>,
    /// Per router, the pool watermark after deployment — the lowest
    /// label a future dynamic allocation could return, so
    /// `[floor, watermark)` bounds every label actually handed out.
    pub pool_watermarks: HashMap<RouterId, u32>,
    /// Highest SID index advertised in the SR domain, when one exists.
    pub max_sid_index: Option<u32>,
}

/// What phase 2 reports back for ground truth and bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct DeployedAs {
    /// Every address (interface or loopback) on an SR-capable router.
    pub sr_addresses: HashSet<Ipv4Addr>,
    /// Every address on a classic-MPLS (LDP-only) router.
    pub ldp_addresses: HashSet<Ipv4Addr>,
    /// Customer prefixes anchored at SR routers — their addresses are
    /// answered by the SR anchor, so probes "to" them observe SR.
    pub sr_prefixes: Vec<Prefix>,
    /// Customer prefixes anchored at LDP-only routers.
    pub ldp_prefixes: Vec<Prefix>,
    /// Label-allocation facts for the static audit.
    pub label_audit: AsLabelRecord,
}

/// Phase 2: compile and install this AS's planes into the network.
///
/// `transit_fecs` are external prefixes this AS carries for
/// neighbours, each with the border router where they exit.
pub fn deploy_as(
    net: &mut Network,
    plan: &AsPlan,
    transit_fecs: &[(Prefix, RouterId)],
    seed: u64,
) -> DeployedAs {
    let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(plan.entry.asn) << 16) ^ 0x5eed);
    let profile = &plan.profile;

    // Behaviour knobs. RFC 4950 support follows the AS-wide config
    // template (one OS image fleet-wide — per-router draws would
    // punch unlabelled holes into label sequences that no real
    // deployment exhibits); ttl-propagate is an ingress-side choice
    // and varies per router, which is what mixes tunnel types within
    // one AS (Appendix C).
    let rfc4950_template = rng.random_bool(profile.p_rfc4950);
    for &r in &plan.routers {
        let plane = net.plane_mut(r);
        plane.ttl_propagate = rng.random_bool(profile.p_propagate);
        plane.rfc4950 = rfc4950_template;
        plane.answers_echo = rng.random_bool(profile.echo_rate);
        plane.snmp_responsive = rng.random_bool(profile.snmp_rate);
    }

    // IGP oracle + anchored customer prefixes.
    net.register_igp(plan.asn, DomainSpf::for_as(net.topo(), plan.asn));
    for &(prefix, anchor) in &plan.customers {
        net.anchor_prefix(prefix, anchor);
    }

    // Label pools.
    let sr_exists = plan.sr_members.len() >= 2;
    let mut label_record = AsLabelRecord::default();
    let mut pools: HashMap<RouterId, DynamicLabelPool> = plan
        .routers
        .iter()
        .map(|&r| {
            let pool_seed = seed ^ u64::from(r.0).wrapping_mul(0x9e37_79b9);
            // Dynamic label regions are vendor-specific: Juniper
            // allocates from ~300k, Nokia SR OS from ~524k — the
            // source of the sparse high-label tail in Fig. 16.
            let floor = match net.topo().router(r).vendor {
                Vendor::Juniper => 299_776,
                Vendor::Nokia => 524_288,
                _ if sr_exists => arest_mpls::pool::SR_AWARE_POOL_START,
                _ => arest_mpls::pool::DEFAULT_POOL_START,
            };
            label_record.pool_floors.insert(r, floor);
            (r, DynamicLabelPool::new(floor, arest_mpls::pool::POOL_END, pool_seed))
        })
        .collect();

    let sr_set: HashSet<RouterId> = plan.sr_members.iter().copied().collect();
    let ldp_set: HashSet<RouterId> = plan.ldp_members.iter().copied().collect();

    // ---- Classic LDP domain ----
    let mut vpn_fecs: Vec<(Prefix, RouterId)> = Vec::new();
    if plan.ldp_members.len() >= 2 {
        let mut fecs: Vec<LdpFec> = Vec::new();
        for &(prefix, anchor) in &plan.customers {
            if ldp_set.contains(&anchor) {
                fecs.push(LdpFec { prefix, egress: anchor });
                if rng.random_bool(profile.vpn_stack_share) {
                    vpn_fecs.push((prefix, anchor));
                }
            }
        }
        // Transit FECs exiting via an LDP border.
        for &(prefix, egress) in transit_fecs {
            if ldp_set.contains(&egress) {
                fecs.push(LdpFec { prefix, egress });
            }
        }
        let domain = LdpDomain::build(net.topo(), &plan.ldp_members, &fecs, &mut pools, true);

        // LDP→SR mirroring: LDP routers tunnel toward SR-side customer
        // prefixes, terminating at the junction (RFC 8661). Built
        // without PHP so the junction receives the label and stitches
        // straight into the SR FTN — no unlabelled gap mid-tunnel.
        let mirror_domain = plan.junction.map(|j| {
            let sr_side: Vec<Prefix> = plan
                .customers
                .iter()
                .filter(|(_, anchor)| sr_set.contains(anchor))
                .map(|(p, _)| *p)
                .collect();
            let mirror_fecs = mirrored_ldp_fecs(&sr_side, j);
            LdpDomain::build(net.topo(), &plan.ldp_members, &mirror_fecs, &mut pools, false)
        });

        // VPN-style inner labels: deep classic stacks (the LSO noise
        // floor of §6.2).
        let mut inner_labels: HashMap<Prefix, Vec<arest_wire::mpls::Label>> = HashMap::new();
        for &(prefix, egress) in &vpn_fecs {
            let inner = pools
                .get_mut(&egress)
                .expect("pool exists")
                .allocate()
                .expect("pool not exhausted");
            inner_labels.insert(prefix, vec![inner]);
            net.plane_mut(egress).lfib.install(inner, LfibAction::PopLocal);
        }
        // RFC 6790 entropy pairs on a small share of the remaining
        // FECs: [ELI, EL] below the transport label. Pure
        // load-balancing state — AReST's detector must not read these
        // as steering stacks.
        for &LdpFec { prefix, egress } in &fecs {
            if inner_labels.contains_key(&prefix) || !rng.random_bool(0.08) {
                continue;
            }
            let eli = arest_wire::mpls::Label::ENTROPY_INDICATOR;
            let el = arest_wire::mpls::Label::new(rng.random_range(100_000..1_000_000))
                .expect("within label space");
            inner_labels.insert(prefix, vec![eli, el]);
            let plane = net.plane_mut(egress);
            plane.lfib.install(eli, LfibAction::PopLocal);
            plane.lfib.install(el, LfibAction::PopLocal);
        }

        let (lfibs, ftns) = domain.into_tables();
        for (router, lfib) in lfibs {
            net.plane_mut(router).merge_lfib(lfib);
        }
        for (router, ftn) in ftns {
            let mut adjusted: Vec<(Prefix, PushInstruction)> = Vec::new();
            for (prefix, push) in ftn.iter() {
                let mut push = push.clone();
                if let Some(inner) = inner_labels.get(prefix) {
                    push.labels.extend(inner.iter().copied());
                }
                adjusted.push((*prefix, push));
            }
            let plane = net.plane_mut(router);
            for (prefix, push) in adjusted {
                plane.ftn.install(prefix, push);
            }
        }
        if let Some(mirror) = mirror_domain {
            let (lfibs, ftns) = mirror.into_tables();
            for (router, lfib) in lfibs {
                net.plane_mut(router).merge_lfib(lfib);
            }
            for (router, ftn) in ftns {
                net.plane_mut(router).merge_ftn(ftn);
            }
        }
    }

    // ---- RSVP-TE tunnels (classic traffic engineering) ----
    // In ASes running classic MPLS without SR, a couple of FECs ride
    // explicitly signalled RSVP-TE tunnels instead of LDP (the paper's
    // footnote 2). Their traces are indistinguishable from LDP —
    // hop-varying dynamic labels — which is the point.
    if !sr_exists && plan.ldp_members.len() >= 3 {
        let spf = DomainSpf::for_members(net.topo(), &plan.ldp_members);
        let head = *plan.ldp_members.first().expect("non-empty");
        let te_fecs: Vec<(Prefix, RouterId)> = plan
            .customers
            .iter()
            .filter(|(_, a)| ldp_set.contains(a) && *a != head)
            .take(2)
            .copied()
            .collect();
        for (prefix, anchor) in te_fecs {
            let Some(path) = spf.tree(head).and_then(|t| t.path(anchor)) else {
                continue;
            };
            if path.len() < 2 {
                continue;
            }
            let tunnel = arest_mpls::rsvp::RsvpTunnel {
                name: format!("{}-te-{prefix}", plan.entry.name),
                path,
                fec: prefix,
            };
            if let Ok(lsp) = arest_mpls::rsvp::signal_tunnel(net.topo(), &tunnel, &mut pools) {
                for (r, lfib) in lsp.lfibs {
                    net.plane_mut(r).merge_lfib(lfib);
                }
                net.plane_mut(lsp.head).merge_ftn(lsp.ftn);
            }
        }
    }

    // ---- SR-MPLS domain ----
    if sr_exists {
        let srgb = LabelBlock::new(profile.srgb_base, 8_000);
        let srlb = LabelBlock::from_range(15_000, 15_999);
        let mut configs: HashMap<RouterId, SrNodeConfig> = plan
            .sr_members
            .iter()
            .map(|&r| {
                // Juniper-style members take adjacency SIDs from the
                // dynamic pool.
                let has_srlb = net.topo().router(r).vendor != Vendor::Juniper;
                (r, SrNodeConfig { srgb, srlb: has_srlb.then_some(srlb) })
            })
            .collect();
        // Roughly one SR AS in eight runs a multi-vendor core where a
        // single router keeps a different SRGB base — the RFC 8402
        // deviation behind the paper's rare (~0.01 %) suffix-based
        // sequence matches (§6.2). Bases stay multiples of 1,000 so
        // the SID index survives as the decimal suffix.
        if plan.sr_members.len() >= 5 && profile.srgb_base == 16_000 && plan.entry.id == 29
        // China Telecom models the multi-vendor case
        {
            let victim = plan.sr_members[plan.sr_members.len() / 2];
            let has_srlb = net.topo().router(victim).vendor != Vendor::Juniper;
            configs.insert(
                victim,
                SrNodeConfig {
                    srgb: LabelBlock::new(30_000, 8_000),
                    srlb: has_srlb.then_some(srlb),
                },
            );
        }

        let mut extra: Vec<PrefixSidSpec> = Vec::new();
        let mut next_index: u32 = 2_000;
        let mut sr_customer_fecs: Vec<(Prefix, RouterId)> = Vec::new();
        for &(prefix, anchor) in &plan.customers {
            if sr_set.contains(&anchor) {
                extra.push(PrefixSidSpec { prefix, egress: anchor, index: SidIndex(next_index) });
                next_index += 1;
                sr_customer_fecs.push((prefix, anchor));
            }
        }
        // Mapping server: prefix SIDs on behalf of LDP-side customers,
        // anchored at the junction (SR→LDP interworking).
        if let Some(j) = plan.junction {
            let ldp_side: Vec<Prefix> = plan
                .customers
                .iter()
                .filter(|(_, anchor)| ldp_set.contains(anchor) && !sr_set.contains(anchor))
                .map(|(p, _)| *p)
                .collect();
            let sids = mapping_server_sids(&ldp_side, j, next_index);
            next_index += sids.len() as u32;
            extra.extend(sids);
        }
        // Transit FECs exiting via an SR border.
        for &(prefix, egress) in transit_fecs {
            if sr_set.contains(&egress) {
                extra.push(PrefixSidSpec { prefix, egress, index: SidIndex(next_index) });
                next_index += 1;
            }
        }

        for (&r, cfg) in &configs {
            label_record.srgbs.insert(r, cfg.srgb);
            if let Some(block) = cfg.srlb {
                label_record.srlbs.insert(r, block);
            }
        }
        // Highest index advertised anywhere in the domain: the last
        // extra SID when any exist, else the last automatic node SID.
        label_record.max_sid_index = Some(if next_index > 2_000 {
            next_index - 1
        } else {
            100 + plan.sr_members.len() as u32 - 1
        });

        let spec = SrDomainSpec {
            members: plan.sr_members.clone(),
            configs,
            extra_prefix_sids: extra,
            php: profile.php,
            node_sid_base: 100,
            install_node_ftn: false,
        };
        let domain = SrDomain::build(net.topo(), &spec, &mut pools);

        // TE policies and service SIDs at the SR borders.
        let sr_borders: Vec<RouterId> =
            plan.borders.iter().copied().filter(|b| sr_set.contains(b)).collect();
        let mut policy_installs: Vec<(RouterId, Prefix, PushInstruction)> = Vec::new();
        let mut service_installs: Vec<(RouterId, arest_wire::mpls::Label)> = Vec::new();
        for (fec_idx, &(prefix, egress)) in sr_customer_fecs.iter().enumerate() {
            let te = rng.random_bool(profile.te_policy_share);
            // ASes with service SIDs always run at least one such FEC
            // (ESnet's LSO residue is in the ground truth, Table 3).
            let svc = (profile.service_sid_share > 0.0 && fec_idx == 0)
                || rng.random_bool(profile.service_sid_share);
            if !te && !svc {
                continue;
            }
            // A waypoint roughly mid-domain for the TE detour.
            let mid = plan.sr_members[plan.sr_members.len() / 2];
            for &headend in &sr_borders {
                if headend == egress {
                    continue;
                }
                // Service-SID paths end their transport with an
                // adjacency SID *into* the egress: the penultimate
                // router pops transport and forces the last link, so
                // the egress receives only the two-label service stack
                // and quotes it — the "unshrinking stacks observable
                // at the destination" of §6.2, and the LSO residue the
                // ESnet ground truth confirmed (Table 3's 4.4 %).
                let into_egress = svc
                    .then(|| {
                        net.topo()
                            .adjacencies(egress)
                            .find(|(_, _, _, remote, _)| {
                                sr_set.contains(remote) && *remote != headend
                            })
                            .map(|(_, _, remote_if, remote, _)| (remote, remote_if))
                    })
                    .flatten();
                let segments = match into_egress {
                    Some((penultimate, out_iface)) if penultimate != egress => vec![
                        Segment::Node(penultimate),
                        Segment::Adjacency { owner: penultimate, out_iface },
                    ],
                    _ if te && mid != headend && mid != egress => {
                        vec![Segment::Node(mid), Segment::Node(egress)]
                    }
                    _ => vec![Segment::Node(egress)],
                };
                let mut policy = SrPolicy::new(headend, prefix, segments);
                if svc {
                    // Two service labels from the top of the egress
                    // SRLB (adjacency SIDs grow from the bottom), so
                    // the egress-received stack keeps depth >= 2.
                    for slot in 0..2u32 {
                        let label = srlb
                            .label_for(srlb.size() - 1 - (2 * (next_index % 250) + slot))
                            .expect("inside SRLB");
                        policy.service_sids.push(label);
                        service_installs.push((egress, label));
                    }
                }
                if let Ok(push) = policy.compile(net.topo(), &domain) {
                    policy_installs.push((headend, prefix, push));
                }
            }
        }

        let (lfibs, ftns) = domain.into_tables();
        for (router, lfib) in lfibs {
            net.plane_mut(router).merge_lfib(lfib);
        }
        for (router, ftn) in ftns {
            net.plane_mut(router).merge_ftn(ftn);
        }
        for (egress, label) in service_installs {
            net.plane_mut(egress).lfib.install(label, LfibAction::PopLocal);
        }
        for (headend, prefix, push) in policy_installs {
            net.plane_mut(headend).ftn.install(prefix, push);
        }
    }

    // Ground truth.
    for (&r, pool) in &pools {
        label_record.pool_watermarks.insert(r, pool.watermark());
    }
    let mut deployed = DeployedAs { label_audit: label_record, ..DeployedAs::default() };
    for &r in &plan.routers {
        let router = net.topo().router(r);
        let addrs: Vec<Ipv4Addr> = std::iter::once(router.loopback)
            .chain(router.ifaces.iter().map(|&i| net.topo().iface(i).addr))
            .collect();
        if sr_set.contains(&r) {
            deployed.sr_addresses.extend(addrs);
        } else if ldp_set.contains(&r) {
            deployed.ldp_addresses.extend(addrs);
        }
    }
    for &(prefix, anchor) in &plan.customers {
        if sr_set.contains(&anchor) {
            deployed.sr_prefixes.push(prefix);
        } else if ldp_set.contains(&anchor) {
            deployed.ldp_prefixes.push(prefix);
        }
    }
    deployed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::by_id;
    use crate::profile::profile_for;

    fn plan(id: u8, scale: f64) -> (Topology, AsPlan) {
        let mut topo = Topology::new();
        let entry = by_id(id).unwrap();
        let profile = profile_for(entry, scale, 1.0);
        let plan = plan_as(&mut topo, entry, profile, 42);
        (topo, plan)
    }

    #[test]
    fn topology_is_connected() {
        let (topo, plan) = plan(15, 0.05); // Microsoft
        assert_eq!(plan.bfs.len(), plan.routers.len(), "BFS reaches every router");
        assert!(topo.link_count() >= plan.routers.len() - 1);
    }

    #[test]
    fn esnet_is_fully_sr_with_no_ldp() {
        let (_, plan) = plan(46, 0.05);
        assert_eq!(plan.sr_members.len(), plan.routers.len());
        assert!(plan.ldp_members.is_empty());
        assert!(plan.junction.is_none());
    }

    #[test]
    fn interworking_as_has_a_junction_inside_both_domains() {
        let (_, plan) = plan(28, 0.05); // Bell Canada: SR + LDP
        assert!(!plan.sr_members.is_empty());
        assert!(!plan.ldp_members.is_empty());
        let j = plan.junction.expect("junction exists");
        assert!(plan.sr_members.contains(&j));
        assert!(plan.ldp_members.contains(&j));
    }

    #[test]
    fn customers_are_anchored_on_edge_routers() {
        let (_, plan) = plan(35, 0.05); // AT&T
        assert!(!plan.customers.is_empty());
        for (prefix, anchor) in &plan.customers {
            assert!(plan.customer_block.covers(prefix));
            assert!(plan.routers.contains(anchor));
        }
    }

    #[test]
    fn deploy_installs_sr_tables_on_members() {
        let mut topo = Topology::new();
        let entry = by_id(46).unwrap(); // ESnet
        let profile = profile_for(entry, 0.05, 1.0);
        let plan = plan_as(&mut topo, entry, profile, 42);
        let mut net = Network::new(topo);
        let deployed = deploy_as(&mut net, &plan, &[], 42);
        assert!(!deployed.sr_addresses.is_empty());
        assert!(deployed.ldp_addresses.is_empty());
        // Every SR member got LFIB entries (node SIDs at least).
        for &r in &plan.sr_members {
            assert!(!net.plane(r).lfib.is_empty(), "{r} has no LFIB");
        }
        // ESnet routers answer no fingerprinting.
        for &r in &plan.routers {
            assert!(!net.plane(r).answers_echo);
            assert!(!net.plane(r).snmp_responsive);
        }
    }

    #[test]
    fn deploy_is_deterministic() {
        let build = || {
            let mut topo = Topology::new();
            let entry = by_id(28).unwrap();
            let profile = profile_for(entry, 0.05, 1.0);
            let plan = plan_as(&mut topo, entry, profile, 7);
            let mut net = Network::new(topo);
            let deployed = deploy_as(&mut net, &plan, &[], 7);
            let mut addrs: Vec<Ipv4Addr> = deployed.sr_addresses.into_iter().collect();
            addrs.sort();
            addrs
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn transit_fecs_create_tunnels_at_the_exit_border() {
        let mut topo = Topology::new();
        let entry = by_id(36).unwrap(); // GTT (confirmed transit)
        let profile = profile_for(entry, 0.05, 1.0);
        let plan = plan_as(&mut topo, entry, profile, 11);
        let mut net = Network::new(topo);
        let external: Prefix = "100.120.0.0/16".parse().unwrap();
        let egress = plan.borders[0];
        deploy_as(&mut net, &plan, &[(external, egress)], 11);
        // Some SR/LDP member should hold an FTN entry for the
        // external prefix (the transit LSP ingress).
        let has_ftn = plan
            .routers
            .iter()
            .any(|&r| net.plane(r).ftn.lookup(Ipv4Addr::new(100, 120, 0, 1)).is_some());
        assert!(has_ftn, "transit FEC installed nowhere");
    }
}
