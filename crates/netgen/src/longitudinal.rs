//! The synthetic longitudinal trace archive behind Fig. 7.
//!
//! The paper samples CAIDA Ark and RIPE Atlas traceroutes quarterly
//! from December 2015 to March 2025 and plots the evolution of MPLS
//! LSE stack sizes, finding stacks ≥ 2 in roughly 20 % of CAIDA
//! traces and 10 % of RIPE traces by 2025, growing over the decade as
//! VPN/TE/SR usage spread.
//!
//! This module is a generative stand-in: a platform-specific base
//! rate of multi-label stacks that grows linearly over the years plus
//! deterministic per-sample noise, sampled March/June/September/
//! December as the paper does.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which archive is being synthesized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// CAIDA Ark (three nodes: NL, US, JP).
    Caida,
    /// RIPE Atlas (measurements in SE, US, JP).
    RipeAtlas,
}

/// One quarterly sample of the archive.
#[derive(Debug, Clone)]
pub struct QuarterSample {
    /// Calendar year.
    pub year: u16,
    /// Sampled month (3, 6, 9, 12).
    pub month: u8,
    /// Histogram of observed LSE stack depths: `counts[d-1]` = number
    /// of MPLS-bearing traces whose deepest stack had depth `d`.
    pub depth_counts: Vec<u64>,
}

impl QuarterSample {
    /// Total MPLS traces in the sample.
    pub fn total(&self) -> u64 {
        self.depth_counts.iter().sum()
    }

    /// Fraction of traces with a stack of depth ≥ 2.
    pub fn multi_label_share(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let multi: u64 = self.depth_counts.iter().skip(1).sum();
        multi as f64 / total as f64
    }
}

/// Generates the 2015–2025 quarterly archive for one platform.
pub fn generate_archive(platform: Platform, seed: u64) -> Vec<QuarterSample> {
    let mut rng = StdRng::seed_from_u64(seed ^ matches!(platform, Platform::Caida) as u64);
    // Final (2025) multi-label share and the 2015 starting point.
    let (start_share, end_share) = match platform {
        Platform::Caida => (0.08, 0.20),
        Platform::RipeAtlas => (0.04, 0.10),
    };
    let mut samples = Vec::new();
    for year in 2015..=2025u16 {
        for month in [3u8, 6, 9, 12] {
            // The paper's window runs December 2015 → March 2025.
            if (year == 2015 && month != 12) || (year == 2025 && month > 3) {
                continue;
            }
            let progress =
                (f64::from(year) + f64::from(month) / 12.0 - 2015.9) / (2025.25 - 2015.9);
            let share = start_share
                + (end_share - start_share) * progress.clamp(0.0, 1.0)
                + rng.random_range(-0.01..0.01);
            let traces: u64 = match platform {
                Platform::Caida => 60_000,
                Platform::RipeAtlas => 25_000,
            };
            // Depth mix within multi-label stacks: mostly 2, a tail of
            // 3–5 that grows slightly with SR-era features.
            let multi = (traces as f64 * share.max(0.0)) as u64;
            let single = traces - multi;
            let deep3 = (multi as f64 * (0.18 + 0.08 * progress.clamp(0.0, 1.0))) as u64;
            let deep4 = deep3 / 4;
            let deep5 = deep4 / 3;
            let depth2 = multi - deep3 - deep4 - deep5;
            samples.push(QuarterSample {
                year,
                month,
                depth_counts: vec![single, depth2, deep3, deep4, deep5],
            });
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archive_covers_the_paper_window() {
        let archive = generate_archive(Platform::Caida, 1);
        let first = archive.first().unwrap();
        let last = archive.last().unwrap();
        assert_eq!((first.year, first.month), (2015, 12));
        assert_eq!((last.year, last.month), (2025, 3));
        // 1 (2015) + 9*4 (2016–2024) + 1 (2025).
        assert_eq!(archive.len(), 38);
    }

    #[test]
    fn multi_label_share_grows_to_the_paper_levels() {
        for (platform, target) in [(Platform::Caida, 0.20), (Platform::RipeAtlas, 0.10)] {
            let archive = generate_archive(platform, 3);
            let first = archive.first().unwrap().multi_label_share();
            let last = archive.last().unwrap().multi_label_share();
            assert!(last > first, "{platform:?} share must grow");
            assert!((last - target).abs() < 0.03, "{platform:?} final share {last}");
        }
    }

    #[test]
    fn caida_exceeds_ripe_throughout() {
        let caida = generate_archive(Platform::Caida, 3);
        let ripe = generate_archive(Platform::RipeAtlas, 3);
        for (c, r) in caida.iter().zip(&ripe) {
            assert!(c.multi_label_share() > r.multi_label_share() - 0.02);
        }
    }

    #[test]
    fn histogram_sums_are_consistent() {
        for sample in generate_archive(Platform::RipeAtlas, 9) {
            assert_eq!(sample.total(), 25_000);
            assert!(sample.multi_label_share() >= 0.0);
        }
    }
}
