//! Full-Internet assembly.
//!
//! Builds the complete measurement substrate: all 60 Table 5 ASes,
//! customer/provider wiring between them (stubs and content providers
//! buy transit from the transit/Tier-1 ASes, so traces *cross* the
//! big ASes exactly as Anaximander's transit targets intend), the 50
//! vantage points, the synthetic BGP view, the prefix-ownership table
//! for bdrmapIT-style annotation, and the ground-truth record the
//! validation experiments read.

use crate::builder::{deploy_as, plan_as_replica, AsLabelRecord, AsPlan};
use crate::catalog::{AsProfile, AsType, CATALOG};
use crate::profile::profile_for;
use arest_simnet::plane::Route;
use arest_simnet::Network;
use arest_topo::graph::Topology;
use arest_topo::ids::{AsNumber, RouterId};
use arest_topo::prefix::Prefix;
use arest_topo::vendor::Vendor;
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Multiplier on the paper's discovered-address counts when sizing
    /// ASes. The default keeps all 60 ASes plus 50 VPs around a few
    /// thousand routers.
    pub scale: f64,
    /// Master seed: same seed → bit-identical Internet.
    pub seed: u64,
    /// Number of vantage points (the paper uses 50).
    pub vp_count: usize,
    /// SR adoption level in `[0, 1]`: scales every AS's SR footprint.
    /// `1.0` is the paper's 2025 snapshot; lower values rewind the
    /// deployment clock for longitudinal what-if studies (the paper's
    /// stated future work).
    pub sr_adoption: f64,
    /// Catalog replication factor: the Internet holds
    /// `60 × catalog_scale` ASes. Replica 0 is the paper's Table 5
    /// verbatim (byte-identical to a `catalog_scale: 1` run); each
    /// further replica re-instantiates the 60 profiles under fresh
    /// ASNs (`asn + 1_000_000·r`), disjoint address space, and its own
    /// deterministic RNG streams. This is the throughput axis for the
    /// columnar-vs-nested benchmarks: 10× catalog, same per-AS shape.
    /// Capped at 63 by the address plan (`plan_as_replica`).
    pub catalog_scale: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig { scale: 0.05, seed: 2_025, vp_count: 50, sr_adoption: 1.0, catalog_scale: 1 }
    }
}

impl GenConfig {
    /// A small configuration for unit tests: a handful of VPs over a
    /// downscaled Internet.
    pub fn tiny() -> GenConfig {
        GenConfig { scale: 0.01, seed: 7, vp_count: 4, sr_adoption: 1.0, catalog_scale: 1 }
    }
}

/// One vantage point.
#[derive(Debug, Clone)]
pub struct VpSpec {
    /// Name, `VM1`…`VM50` as in the paper's Appendix A.
    pub name: String,
    /// The VP's source address.
    pub addr: Ipv4Addr,
    /// The gateway router probes enter through.
    pub gateway: RouterId,
}

/// One synthetic BGP route (becomes `arest-mapping`'s `BgpRoute`).
#[derive(Debug, Clone)]
pub struct RouteSpec {
    /// The announced prefix.
    pub prefix: Prefix,
    /// The origin AS.
    pub origin: AsNumber,
    /// The AS path as seen from the measurement side.
    pub path: Vec<AsNumber>,
}

/// What the generator knows to be true — the validation oracle.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Addresses on SR-capable routers.
    pub sr_addresses: HashSet<Ipv4Addr>,
    /// Addresses on LDP-only routers.
    pub ldp_addresses: HashSet<Ipv4Addr>,
    /// Customer prefixes anchored at SR routers (their anchor answers
    /// probes, so these addresses observe SR behaviour).
    pub sr_prefixes: Vec<Prefix>,
    /// Customer prefixes anchored at LDP-only routers.
    pub ldp_prefixes: Vec<Prefix>,
    /// Whether each AS actually deployed SR.
    pub sr_deployed: HashMap<AsNumber, bool>,
}

impl GroundTruth {
    /// The oracle AReST's validation uses: is this interface SR?
    pub fn is_sr(&self, addr: Ipv4Addr) -> bool {
        self.sr_addresses.contains(&addr) || self.sr_prefixes.iter().any(|p| p.contains(addr))
    }

    /// Whether the address belongs to a classic-MPLS deployment.
    pub fn is_ldp(&self, addr: Ipv4Addr) -> bool {
        self.ldp_addresses.contains(&addr) || self.ldp_prefixes.iter().any(|p| p.contains(addr))
    }
}

/// The assembled synthetic Internet.
#[derive(Debug)]
pub struct Internet {
    /// The simulator.
    pub net: Network,
    /// Per-AS plans, in catalog order.
    pub plans: Vec<AsPlan>,
    /// The vantage points.
    pub vps: Vec<VpSpec>,
    /// The synthetic BGP view.
    pub routes: Vec<RouteSpec>,
    /// Prefix → owning AS (for bdrmapIT-style annotation).
    pub ownership: Vec<(Prefix, AsNumber)>,
    /// The validation oracle.
    pub ground_truth: GroundTruth,
    /// Per-AS label-allocation records for `arest-audit`.
    pub label_records: HashMap<AsNumber, AsLabelRecord>,
}

impl Internet {
    /// The plan for the AS with paper identifier `id`.
    pub fn plan(&self, id: u8) -> Option<&AsPlan> {
        self.plans.get(usize::from(id).checked_sub(1)?)
    }
}

fn hash2(a: u64, b: u64) -> u64 {
    let mut h = a.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ b.wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    h ^= h >> 29;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^ (h >> 32)
}

/// Sequential /31-style address-pair allocator over 172.20.0.0/14 and
/// 192.168.0.0/16 style blocks.
struct PairAlloc {
    base: [u8; 2],
    counter: u32,
}

impl PairAlloc {
    fn new(a: u8, b: u8) -> PairAlloc {
        PairAlloc { base: [a, b], counter: 0 }
    }

    fn next(&mut self) -> (Ipv4Addr, Ipv4Addr) {
        let c = self.counter;
        self.counter += 1;
        let second = self.base[1] as u32 + c / (127 * 256);
        assert!(second <= 255, "inter-AS link space exhausted");
        let third = ((c / 127) % 256) as u8;
        let fourth = ((c % 127) * 2) as u8;
        (
            Ipv4Addr::new(self.base[0], second as u8, third, fourth),
            Ipv4Addr::new(self.base[0], second as u8, third, fourth + 1),
        )
    }
}

/// Generates the full synthetic Internet.
pub fn generate(config: &GenConfig) -> Internet {
    generate_probed(config, None)
}

/// Like [`generate`], but deploys control/data planes only for the
/// ASes whose catalog index is set in `probed`, plus their transit
/// providers (a selected customer's traces cross its providers, so
/// those planes must forward).
///
/// The *topology* is always built in full — every AS's routers and
/// links, the provider wiring, the VP attachments, the BGP view and
/// ownership table — because provider selection, VP entry points, and
/// address allocation all hash over the complete plan set; skipping
/// any of it would change addresses everywhere. Only the expensive
/// per-AS phase-2 work (IGP SPF domains, LDP/SR label planes, customer
/// anchoring) is elided, and skipped ASes simply never forward — which
/// is fine, because an incremental campaign never probes them.
///
/// `probed: None` — or an all-true mask — is exactly [`generate`]:
/// the output is byte-identical.
pub fn generate_probed(config: &GenConfig, probed: Option<&[bool]>) -> Internet {
    let registry = arest_obs::global();
    let _timer = registry.timer("netgen.generate.us");
    let mut topo = Topology::new();

    // ---- Phase 1: AS topologies ----
    // Replica-major, catalog-minor: replica 0 lays down the paper's 60
    // ASes first (so `Internet::plan(id)` / `Dataset::result(id)` keep
    // addressing Table 5 rows at any scale), then each further replica
    // appends its own 60 under fresh ASNs and disjoint address space.
    let scale = config.catalog_scale.max(1);
    assert!(scale < 64, "catalog_scale {scale} exceeds the address plan (max 63)");
    let mut plans: Vec<AsPlan> = Vec::with_capacity(CATALOG.len() * scale);
    for replica in 0..scale {
        for entry in &CATALOG {
            let entry = AsProfile { asn: entry.asn + 1_000_000 * replica as u32, ..*entry };
            let profile = profile_for(&entry, config.scale, config.sr_adoption);
            plans.push(plan_as_replica(&mut topo, &entry, profile, config.seed, replica as u8));
        }
    }

    // ---- Provider wiring ----
    // Stubs and content providers buy transit from sizeable
    // transit/Tier-1 ASes; transit ASes peer upward with Tier-1s.
    let provider_pool: Vec<usize> = plans
        .iter()
        .enumerate()
        .filter(|(_, p)| {
            matches!(p.entry.astype, AsType::Transit | AsType::Tier1) && p.routers.len() >= 12
        })
        .map(|(i, _)| i)
        .collect();

    let mut transit_alloc = PairAlloc::new(192, 168);
    // customer AS index → [(provider index, provider border, link iface on provider)]
    let mut providers: HashMap<usize, Vec<(usize, RouterId)>> = HashMap::new();
    // provider AS index → [(prefix, exit border)]
    let mut transit_fecs: HashMap<usize, Vec<(Prefix, RouterId)>> = HashMap::new();

    for (ci, customer) in plans.iter().enumerate() {
        let eligible = matches!(customer.entry.astype, AsType::Stub | AsType::Content)
            || (customer.entry.astype == AsType::Transit && customer.routers.len() < 12);
        if !eligible || provider_pool.is_empty() {
            continue;
        }
        let count = 1 + (hash2(customer.entry.asn.into(), 3) % 2) as usize;
        for k in 0..count {
            let pi = provider_pool
                [(hash2(customer.entry.asn.into(), 10 + k as u64) as usize) % provider_pool.len()];
            if pi == ci {
                continue;
            }
            let provider = &plans[pi];
            let p_border = provider.borders[(hash2(customer.entry.asn.into(), 20 + k as u64)
                as usize)
                % provider.borders.len()];
            let c_border = customer.borders[0];
            let (addr_p, addr_c) = transit_alloc.next();
            topo.add_link(p_border, addr_p, c_border, addr_c, 1);
            providers.entry(ci).or_default().push((pi, p_border));
            transit_fecs
                .entry(pi)
                .or_default()
                .extend([(customer.customer_block, p_border), (customer.infra_block, p_border)]);
        }
    }

    // ---- Vantage points ----
    // Each VP's gateway links to one border of every AS (VP-specific
    // choice, so different VPs enter through different ASBRs).
    let mut vp_alloc = PairAlloc::new(172, 20);
    let mut vp_gateways: Vec<RouterId> = Vec::new();
    // (vp, as index) → provider-side entry router the VP linked to.
    let mut vp_entry: HashMap<(usize, usize), RouterId> = HashMap::new();
    for j in 0..config.vp_count {
        let gateway = topo.add_router(
            format!("vp{j}"),
            AsNumber::MEASUREMENT,
            Vendor::Linux,
            Ipv4Addr::new(198, 18, j as u8, 1),
        );
        vp_gateways.push(gateway);
        for (ai, plan) in plans.iter().enumerate() {
            // VPs overwhelmingly enter through the core-side borders;
            // the appended LDP-island border (when interworking) only
            // takes 1-in-8 entries — LDP→SR chains stay the rare mode
            // the paper observes (§7.2).
            let h = hash2(j as u64, plan.entry.asn.into()) as usize;
            let core_borders = plan.profile.borders.min(plan.borders.len());
            let border = if plan.borders.len() > core_borders && h.is_multiple_of(48) {
                *plan.borders.last().expect("non-empty")
            } else {
                plan.borders[h % core_borders]
            };
            let (addr_vp, addr_b) = vp_alloc.next();
            topo.add_link(gateway, addr_vp, border, addr_b, 1);
            vp_entry.insert((j, ai), border);
        }
    }

    // ---- Phase 2: planes ----
    // The deploy set: every AS for a full run; for a slice, the
    // selected ASes plus their providers. Membership is an idempotent
    // OR, so the provider map's iteration order cannot matter.
    let deploy: Vec<bool> = match probed {
        None => vec![true; plans.len()],
        Some(mask) => {
            let selected = |i: usize| mask.get(i).copied().unwrap_or(false);
            let mut deploy: Vec<bool> = (0..plans.len()).map(selected).collect();
            for (ci, provs) in &providers {
                if selected(*ci) {
                    for (pi, _) in provs {
                        deploy[*pi] = true;
                    }
                }
            }
            deploy
        }
    };
    let mut net = Network::new(topo);
    let mut ground_truth = GroundTruth::default();
    let mut label_records = HashMap::new();
    for (ai, plan) in plans.iter().enumerate() {
        // Deployment intent derives from the plan alone, so the
        // oracle answers for skipped ASes too.
        ground_truth.sr_deployed.insert(plan.asn, plan.sr_members.len() >= 2);
        if !deploy[ai] {
            continue;
        }
        let fecs = transit_fecs.get(&ai).cloned().unwrap_or_default();
        let deployed = deploy_as(&mut net, plan, &fecs, config.seed);
        label_records.insert(plan.asn, deployed.label_audit);
        ground_truth.sr_addresses.extend(deployed.sr_addresses);
        ground_truth.ldp_addresses.extend(deployed.ldp_addresses);
        ground_truth.sr_prefixes.extend(deployed.sr_prefixes);
        ground_truth.ldp_prefixes.extend(deployed.ldp_prefixes);
    }

    // Exit maps + direct border routes for transit.
    for (ci, provs) in &providers {
        let customer = &plans[*ci];
        for (pi, p_border) in provs {
            let provider = &plans[*pi];
            for block in [customer.customer_block, customer.infra_block] {
                net.register_exit(provider.asn, block, *p_border);
            }
            // The provider border's direct route onto the customer link.
            let customer_border = customer.borders[0];
            let direct_iface = net
                .topo()
                .adjacencies(*p_border)
                .find(|(_, _, _, remote, _)| *remote == customer_border)
                .map(|(_, out_iface, _, _, _)| out_iface);
            if let Some(out_iface) = direct_iface {
                for block in [customer.customer_block, customer.infra_block] {
                    net.plane_mut(*p_border)
                        .install_route(block, Route { out_iface, next_router: customer_border });
                }
            }
        }
    }

    // VP gateway FIBs: route each AS's blocks to the VP's chosen entry
    // point — directly, or through a provider for half the (VP, AS)
    // pairs when the AS has one (creating transit-crossing traces).
    let mut vps = Vec::new();
    for (j, &gateway) in vp_gateways.iter().enumerate() {
        let iface_to: HashMap<RouterId, arest_topo::ids::IfaceId> = net
            .topo()
            .adjacencies(gateway)
            .map(|(_, local_if, _, remote, _)| (remote, local_if))
            .collect();
        for (ai, plan) in plans.iter().enumerate() {
            let direct = vp_entry[&(j, ai)];
            let via_provider = providers.get(&ai).and_then(|provs| {
                if hash2(j as u64, 100 + plan.entry.asn as u64).is_multiple_of(2) {
                    provs.first().copied()
                } else {
                    None
                }
            });
            let (infra_next, customer_next) = match via_provider {
                // Enter the provider wherever this VP enters it; its
                // exit map carries the packet across to the customer.
                Some((pi, _)) => {
                    let provider_entry = vp_entry[&(j, pi)];
                    (direct, provider_entry)
                }
                None => (direct, direct),
            };
            let gateway_plane =
                |next: RouterId| Route { out_iface: iface_to[&next], next_router: next };
            let infra_route = gateway_plane(infra_next);
            let customer_route = gateway_plane(customer_next);
            net.plane_mut(gateway).install_route(plan.infra_block, infra_route);
            net.plane_mut(gateway).install_route(plan.customer_block, customer_route);
        }
        vps.push(VpSpec {
            name: format!("VM{}", j + 1),
            addr: Ipv4Addr::new(198, 18, j as u8, 1),
            gateway,
        });
    }

    // ---- BGP view and ownership ----
    let mut routes = Vec::new();
    let mut ownership = Vec::new();
    for (ai, plan) in plans.iter().enumerate() {
        ownership.push((plan.infra_block, plan.asn));
        ownership.push((plan.customer_block, plan.asn));
        // Customers announce their own /24s (the aggregate exists only
        // in the internal routing state): Anaximander must see every
        // attached prefix to build a target list that explores the
        // whole edge, exactly as real BGP tables expose it.
        let announced: Vec<Prefix> = plan
            .customers
            .iter()
            .map(|(p, _)| *p)
            .chain(std::iter::once(plan.infra_block))
            .collect();
        for block in announced {
            routes.push(RouteSpec {
                prefix: block,
                origin: plan.asn,
                path: vec![AsNumber::MEASUREMENT, plan.asn],
            });
            if let Some(provs) = providers.get(&ai) {
                for (pi, _) in provs {
                    routes.push(RouteSpec {
                        prefix: block,
                        origin: plan.asn,
                        path: vec![AsNumber::MEASUREMENT, plans[*pi].asn, plan.asn],
                    });
                }
            }
        }
    }
    // Inter-AS link addresses: owned by the router's AS, as /32s.
    for iface in net.topo().ifaces() {
        let addr = iface.addr;
        let octets = addr.octets();
        if octets[0] == 192 || octets[0] == 172 || octets[0] == 198 {
            ownership.push((Prefix::host(addr), net.topo().router(iface.router).asn));
        }
    }

    if registry.is_enabled() {
        // Generation is cold (once per run), so registering here
        // instead of caching handles in a static is fine.
        registry.counter("netgen.internets").inc();
        registry.counter("netgen.routers").add(net.topo().router_count() as u64);
        registry.counter("netgen.links").add(net.topo().link_count() as u64);
        registry.counter("netgen.vps").add(vps.len() as u64);
        registry.counter("netgen.bgp_routes").add(routes.len() as u64);
    }
    Internet { net, plans, vps, routes, ownership, ground_truth, label_records }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arest_simnet::packet::{ProbeReply, ProbeSpec, TransportPayload};

    fn tiny() -> Internet {
        generate(&GenConfig::tiny())
    }

    #[test]
    fn generates_all_60_ases_and_vps() {
        let internet = tiny();
        assert_eq!(internet.plans.len(), 60);
        assert_eq!(internet.vps.len(), 4);
        assert!(internet.net.topo().router_count() > 100);
        assert_eq!(internet.plan(46).unwrap().entry.name, "ESnet");
    }

    #[test]
    fn ground_truth_matches_profiles() {
        let internet = tiny();
        let esnet = internet.plan(46).unwrap();
        assert!(internet.ground_truth.sr_deployed[&esnet.asn]);
        // Every ESnet address is SR.
        for &r in &esnet.routers {
            let lo = internet.net.topo().router(r).loopback;
            assert!(internet.ground_truth.is_sr(lo));
        }
        // An unconfirmed stub deploys nothing.
        let proximus = internet.plan(7).unwrap();
        assert!(!internet.ground_truth.sr_deployed[&proximus.asn]);
    }

    #[test]
    fn probes_reach_customer_prefixes() {
        let internet = tiny();
        let vp = &internet.vps[0];
        let mut delivered = 0;
        let mut tried = 0;
        for plan in internet.plans.iter().filter(|p| p.routers.len() >= 4) {
            let Some(&(prefix, _)) = plan.customers.first() else { continue };
            tried += 1;
            let reply = internet.net.probe(&ProbeSpec {
                entry: vp.gateway,
                src: vp.addr,
                dst: prefix.nth(7),
                ttl: 40,
                transport: TransportPayload::Udp { src_port: 33_434, dst_port: 33_434, ident: 9 },
            });
            if matches!(reply, ProbeReply::DestUnreachable { .. }) {
                delivered += 1;
            }
        }
        assert!(tried > 10, "not enough sizeable ASes: {tried}");
        assert_eq!(delivered, tried, "every customer prefix must be reachable");
    }

    #[test]
    fn some_vp_as_pairs_transit_a_provider() {
        let internet = tiny();
        // At least one stub/content AS has a provider, and for some VP
        // the customer route detours through it.
        let has_detour = internet.vps.iter().any(|vp| {
            internet.plans.iter().any(|plan| {
                if plan.entry.astype != AsType::Stub && plan.entry.astype != AsType::Content {
                    return false;
                }
                let Some(&(prefix, _)) = plan.customers.first() else { return false };
                let reply = internet.net.probe(&ProbeSpec {
                    entry: vp.gateway,
                    src: vp.addr,
                    dst: prefix.nth(3),
                    ttl: 60,
                    transport: TransportPayload::Udp {
                        src_port: 33_434,
                        dst_port: 33_434,
                        ident: 4,
                    },
                });
                match reply {
                    // A detoured trace crosses the provider: clearly
                    // more forward hops than the AS's own diameter.
                    ProbeReply::DestUnreachable { forward_hops, .. } => {
                        usize::from(forward_hops) > plan.routers.len() + 2
                    }
                    _ => false,
                }
            })
        });
        assert!(has_detour, "no transit-crossing trace found");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.net.topo().router_count(), b.net.topo().router_count());
        assert_eq!(a.net.topo().iface_count(), b.net.topo().iface_count());
        let mut sra: Vec<Ipv4Addr> = a.ground_truth.sr_addresses.iter().copied().collect();
        let mut srb: Vec<Ipv4Addr> = b.ground_truth.sr_addresses.iter().copied().collect();
        sra.sort();
        srb.sort();
        assert_eq!(sra, srb);
    }

    #[test]
    fn bgp_view_has_transit_paths() {
        let internet = tiny();
        let with_transit = internet.routes.iter().filter(|r| r.path.len() >= 3).count();
        assert!(with_transit > 10, "expected provider paths, got {with_transit}");
    }

    #[test]
    fn probed_generation_keeps_topology_and_slices_planes() {
        let config = GenConfig::tiny();
        let full = tiny();
        // Select one sizeable AS; its providers ride along.
        let target = full
            .plans
            .iter()
            .position(|p| p.routers.len() >= 4 && !p.customers.is_empty())
            .expect("a sizeable AS exists");
        let mask: Vec<bool> = (0..full.plans.len()).map(|i| i == target).collect();
        let sliced = generate_probed(&config, Some(&mask));

        // The topology — and with it every address — is unchanged.
        assert_eq!(full.net.topo().router_count(), sliced.net.topo().router_count());
        assert_eq!(full.net.topo().iface_count(), sliced.net.topo().iface_count());
        assert_eq!(full.routes.len(), sliced.routes.len());
        assert_eq!(full.ownership.len(), sliced.ownership.len());

        // Only the selected AS (plus its providers) deployed planes,
        // but the plan-derived deployment oracle covers everything.
        assert!(sliced.label_records.contains_key(&sliced.plans[target].asn));
        assert!(sliced.label_records.len() < full.label_records.len());
        assert_eq!(full.ground_truth.sr_deployed, sliced.ground_truth.sr_deployed);

        // The selected AS still forwards: its first customer prefix
        // answers a probe through the sliced planes.
        let plan = &sliced.plans[target];
        let (prefix, _) = plan.customers[0];
        let vp = &sliced.vps[0];
        let reply = sliced.net.probe(&ProbeSpec {
            entry: vp.gateway,
            src: vp.addr,
            dst: prefix.nth(7),
            ttl: 40,
            transport: TransportPayload::Udp { src_port: 33_434, dst_port: 33_434, ident: 9 },
        });
        assert!(matches!(reply, ProbeReply::DestUnreachable { .. }), "got {reply:?}");

        // An all-true mask is exactly a full run.
        let all = vec![true; full.plans.len()];
        let same = generate_probed(&config, Some(&all));
        assert_eq!(full.label_records.len(), same.label_records.len());
        let mut a: Vec<Ipv4Addr> = full.ground_truth.sr_addresses.iter().copied().collect();
        let mut b: Vec<Ipv4Addr> = same.ground_truth.sr_addresses.iter().copied().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn catalog_scale_replicates_without_collisions() {
        let scaled = generate(&GenConfig { catalog_scale: 3, ..GenConfig::tiny() });
        assert_eq!(scaled.plans.len(), 180);

        // Every replica gets distinct ASNs and distinct address blocks.
        let asns: HashSet<u32> = scaled.plans.iter().map(|p| p.entry.asn).collect();
        assert_eq!(asns.len(), 180, "replica ASNs collide");
        let blocks: HashSet<Ipv4Addr> =
            scaled.plans.iter().map(|p| p.infra_block.network()).collect();
        assert_eq!(blocks.len(), 180, "replica infra blocks collide");

        // Replica 0 is the Table 5 catalog verbatim: byte-identical to
        // an unscaled run, so Dataset::result(id) keeps its meaning.
        let base = tiny();
        for (a, b) in base.plans.iter().zip(&scaled.plans) {
            assert_eq!(a.entry.asn, b.entry.asn);
            assert_eq!(a.routers.len(), b.routers.len());
            assert_eq!(a.infra_block, b.infra_block);
            assert_eq!(a.customer_block, b.customer_block);
            assert_eq!(a.customers, b.customers);
        }

        // Later replicas diverge: same catalog row, different ASN, so
        // every ASN-keyed draw (hidden SR deployers, wiring RNG) runs
        // on a fresh stream rather than cloning replica 0.
        let differs = (0..60).any(|i| {
            scaled.ground_truth.sr_deployed[&scaled.plans[i].asn]
                != scaled.ground_truth.sr_deployed[&scaled.plans[i + 60].asn]
        });
        assert!(differs, "replica 1 cloned replica 0's deployment draws");
        for r in 1..3u32 {
            for i in 0..60 {
                let plan = &scaled.plans[(r as usize) * 60 + i];
                assert_eq!(plan.entry.asn, base.plans[i].entry.asn + 1_000_000 * r);
            }
        }
    }
}
