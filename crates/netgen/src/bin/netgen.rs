//! Generate the synthetic Internet and print its shape.
//!
//! ```text
//! netgen [options]
//!
//! options:
//!   --scale <n>         catalog replicas (default 1; 10 → 600 ASes)
//!   --scale-factor <f>  per-AS router scale (default 0.05)
//!   --seed <n>          generator seed (default 2025)
//!   --vps <n>           vantage point count (default 8)
//!   --sr-adoption <f>   fraction of SR-capable ASes deploying (default 1.0)
//!
//! Prints one summary line per replica plus workspace totals. The
//! catalog-scale knob is the throughput axis for the columnar
//! benchmarks: replica 0 is always the Table 5 catalog verbatim, so
//! `--scale 1` output is byte-identical to the default pipeline input.
//! ```

use arest_netgen::internet::{generate, GenConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = GenConfig::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => config.catalog_scale = next_value(&mut iter, "--scale"),
            "--scale-factor" => config.scale = next_value(&mut iter, "--scale-factor"),
            "--seed" => config.seed = next_value(&mut iter, "--seed"),
            "--vps" => config.vp_count = next_value(&mut iter, "--vps"),
            "--sr-adoption" => config.sr_adoption = next_value(&mut iter, "--sr-adoption"),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown option {other}")),
        }
    }

    eprintln!(
        "generating the synthetic Internet (catalog ×{}, scale {}, seed {})…",
        config.catalog_scale, config.scale, config.seed
    );
    let internet = generate(&config);
    let catalog = internet.plans.len() / config.catalog_scale.max(1);
    for (replica, chunk) in internet.plans.chunks(catalog).enumerate() {
        let routers: usize = chunk.iter().map(|p| p.routers.len()).sum();
        let sr = chunk.iter().filter(|p| !p.sr_members.is_empty()).count();
        println!(
            "replica {replica}: {} ASes (asn {}..{}), {routers} routers, {sr} SR-deployed",
            chunk.len(),
            chunk.first().map_or(0, |p| p.entry.asn),
            chunk.last().map_or(0, |p| p.entry.asn),
        );
    }
    println!(
        "total: {} ASes, {} routers, {} links, {} VPs, {} routes, {} SR addrs, {} LDP addrs",
        internet.plans.len(),
        internet.net.topo().router_count(),
        internet.net.topo().link_count(),
        internet.vps.len(),
        internet.routes.len(),
        internet.ground_truth.sr_addresses.len(),
        internet.ground_truth.ldp_addresses.len(),
    );
}

fn next_value<T: std::str::FromStr>(iter: &mut impl Iterator<Item = String>, flag: &str) -> T {
    iter.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}\n");
    }
    eprintln!(
        "usage: netgen [--scale <replicas>] [--scale-factor <f>] [--seed <n>] \
         [--vps <n>] [--sr-adoption <f>]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
