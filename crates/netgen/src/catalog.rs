//! The paper's Table 5: the 60 targeted ASes.
//!
//! For every AS: its identifier (`#1`–`#60`), ASN, name, hierarchy
//! class, the measurement volume the paper reports (traces sent per
//! VP and distinct IPv4 addresses discovered), and the SR-MPLS
//! confirmation source. Per §5 the validation sets are disjoint: 25
//! ASes confirmed via private communication with Cisco and 10 via the
//! operator survey (35 validation cases in total).

use core::fmt;

/// Position in the AS hierarchy (CAIDA AS-relationship classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AsType {
    /// No customers (identifier range #1–12).
    Stub,
    /// Content provider (#13–25).
    Content,
    /// Transit provider (#26–52).
    Transit,
    /// Tier-1 (#53–60).
    Tier1,
}

impl fmt::Display for AsType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AsType::Stub => "Stub",
            AsType::Content => "Content",
            AsType::Transit => "Transit",
            AsType::Tier1 => "Tier-1",
        };
        write!(f, "{s}")
    }
}

/// Where the SR-MPLS deployment claim comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Confirmation {
    /// Private communication with Cisco (red in the paper's figures).
    Cisco,
    /// The operator survey of §3 (blue).
    Survey,
    /// No external confirmation (black): selected from CAIDA AS rank.
    None,
}

/// One Table 5 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsProfile {
    /// The paper's identifier (`#id`).
    pub id: u8,
    /// The autonomous system number.
    pub asn: u32,
    /// Operator name.
    pub name: &'static str,
    /// Hierarchy class.
    pub astype: AsType,
    /// Traces sent per vantage point (Table 5).
    pub traces_sent: u32,
    /// Distinct IPv4 addresses the paper's campaign discovered.
    pub ips_discovered: u32,
    /// SR-MPLS confirmation source.
    pub confirmation: Confirmation,
}

impl AsProfile {
    /// Whether the paper's methodology kept this AS for analysis
    /// (≥ 100 distinct discovered addresses, §5).
    pub fn analyzed(&self) -> bool {
        self.ips_discovered >= 100
    }

    /// Whether some external source claims SR-MPLS deployment here.
    pub fn claims_sr(&self) -> bool {
        self.confirmation != Confirmation::None
    }
}

use AsType::{Content, Stub, Tier1, Transit};
use Confirmation::{Cisco, None as NoConf, Survey};

/// The full Table 5, in identifier order.
pub const CATALOG: [AsProfile; 60] = [
    AsProfile {
        id: 1,
        asn: 46467,
        name: "Dish Network",
        astype: Stub,
        traces_sent: 2,
        ips_discovered: 1,
        confirmation: Cisco,
    },
    AsProfile {
        id: 2,
        asn: 29447,
        name: "Iliad Italy",
        astype: Stub,
        traces_sent: 5_888,
        ips_discovered: 166,
        confirmation: Cisco,
    },
    AsProfile {
        id: 3,
        asn: 9605,
        name: "NTT Docomo",
        astype: Stub,
        traces_sent: 10_034,
        ips_discovered: 245,
        confirmation: Cisco,
    },
    AsProfile {
        id: 4,
        asn: 63802,
        name: "Flets",
        astype: Stub,
        traces_sent: 512,
        ips_discovered: 4,
        confirmation: Cisco,
    },
    AsProfile {
        id: 5,
        asn: 2506,
        name: "NTT West",
        astype: Stub,
        traces_sent: 837,
        ips_discovered: 18,
        confirmation: Cisco,
    },
    AsProfile {
        id: 6,
        asn: 654,
        name: "OVH",
        astype: Stub,
        traces_sent: 0,
        ips_discovered: 0,
        confirmation: NoConf,
    },
    AsProfile {
        id: 7,
        asn: 5432,
        name: "Proximus",
        astype: Stub,
        traces_sent: 15_392,
        ips_discovered: 677,
        confirmation: NoConf,
    },
    AsProfile {
        id: 8,
        asn: 400843,
        name: "Audacy",
        astype: Stub,
        traces_sent: 1,
        ips_discovered: 0,
        confirmation: Cisco,
    },
    AsProfile {
        id: 9,
        asn: 400322,
        name: "NGtTel",
        astype: Stub,
        traces_sent: 15,
        ips_discovered: 0,
        confirmation: Cisco,
    },
    AsProfile {
        id: 10,
        asn: 399827,
        name: "2pifi",
        astype: Stub,
        traces_sent: 12,
        ips_discovered: 4,
        confirmation: Cisco,
    },
    AsProfile {
        id: 11,
        asn: 398872,
        name: "Big WiFi",
        astype: Stub,
        traces_sent: 6,
        ips_discovered: 2,
        confirmation: Cisco,
    },
    AsProfile {
        id: 12,
        asn: 8835,
        name: "Binkbroadband",
        astype: Stub,
        traces_sent: 0,
        ips_discovered: 0,
        confirmation: Survey,
    },
    AsProfile {
        id: 13,
        asn: 45102,
        name: "Alibaba",
        astype: Content,
        traces_sent: 14_520,
        ips_discovered: 1_813,
        confirmation: Cisco,
    },
    AsProfile {
        id: 14,
        asn: 15169,
        name: "Google",
        astype: Content,
        traces_sent: 35_262,
        ips_discovered: 19_427,
        confirmation: NoConf,
    },
    AsProfile {
        id: 15,
        asn: 8075,
        name: "Microsoft",
        astype: Content,
        traces_sent: 256_419,
        ips_discovered: 6_365,
        confirmation: Cisco,
    },
    AsProfile {
        id: 16,
        asn: 138384,
        name: "Rakuten",
        astype: Content,
        traces_sent: 1_659,
        ips_discovered: 154,
        confirmation: Cisco,
    },
    AsProfile {
        id: 17,
        asn: 17676,
        name: "Softbank",
        astype: Content,
        traces_sent: 147_605,
        ips_discovered: 21_873,
        confirmation: NoConf,
    },
    AsProfile {
        id: 18,
        asn: 30149,
        name: "Goldman Sachs",
        astype: Content,
        traces_sent: 19,
        ips_discovered: 10,
        confirmation: Cisco,
    },
    AsProfile {
        id: 19,
        asn: 16509,
        name: "Amazon",
        astype: Content,
        traces_sent: 635_599,
        ips_discovered: 25_520,
        confirmation: NoConf,
    },
    AsProfile {
        id: 20,
        asn: 14061,
        name: "Digital Ocean",
        astype: Content,
        traces_sent: 11_743,
        ips_discovered: 3_579,
        confirmation: NoConf,
    },
    AsProfile {
        id: 21,
        asn: 5667,
        name: "Meta",
        astype: Content,
        traces_sent: 0,
        ips_discovered: 0,
        confirmation: NoConf,
    },
    AsProfile {
        id: 22,
        asn: 43515,
        name: "YouTube",
        astype: Content,
        traces_sent: 120,
        ips_discovered: 65,
        confirmation: NoConf,
    },
    AsProfile {
        id: 23,
        asn: 138699,
        name: "Tiktok",
        astype: Content,
        traces_sent: 14,
        ips_discovered: 28,
        confirmation: NoConf,
    },
    AsProfile {
        id: 24,
        asn: 32787,
        name: "Akamai",
        astype: Content,
        traces_sent: 4_274,
        ips_discovered: 6_988,
        confirmation: NoConf,
    },
    AsProfile {
        id: 25,
        asn: 13335,
        name: "Cloudflare",
        astype: Content,
        traces_sent: 10_494,
        ips_discovered: 32_735,
        confirmation: NoConf,
    },
    AsProfile {
        id: 26,
        asn: 12322,
        name: "Free",
        astype: Transit,
        traces_sent: 42_964,
        ips_discovered: 2_024,
        confirmation: Cisco,
    },
    AsProfile {
        id: 27,
        asn: 5410,
        name: "Bouygues",
        astype: Transit,
        traces_sent: 27_771,
        ips_discovered: 1_048,
        confirmation: Cisco,
    },
    AsProfile {
        id: 28,
        asn: 577,
        name: "Bell Canada",
        astype: Transit,
        traces_sent: 29_832,
        ips_discovered: 3_748,
        confirmation: Cisco,
    },
    AsProfile {
        id: 29,
        asn: 23764,
        name: "China Telecom",
        astype: Transit,
        traces_sent: 11_115,
        ips_discovered: 3_374,
        confirmation: Cisco,
    },
    AsProfile {
        id: 30,
        asn: 8220,
        name: "Colt",
        astype: Transit,
        traces_sent: 243_811,
        ips_discovered: 7_282,
        confirmation: Cisco,
    },
    AsProfile {
        id: 31,
        asn: 2516,
        name: "KDDI",
        astype: Transit,
        traces_sent: 89_365,
        ips_discovered: 12_994,
        confirmation: Cisco,
    },
    AsProfile {
        id: 32,
        asn: 38631,
        name: "Line",
        astype: Transit,
        traces_sent: 423,
        ips_discovered: 12,
        confirmation: Cisco,
    },
    AsProfile {
        id: 33,
        asn: 64049,
        name: "Reliance Jio",
        astype: Transit,
        traces_sent: 7_014,
        ips_discovered: 2_905,
        confirmation: Cisco,
    },
    AsProfile {
        id: 34,
        asn: 132203,
        name: "Tencent",
        astype: Transit,
        traces_sent: 7_943,
        ips_discovered: 2_922,
        confirmation: NoConf,
    },
    AsProfile {
        id: 35,
        asn: 7018,
        name: "AT&T",
        astype: Transit,
        traces_sent: 649_359,
        ips_discovered: 44_929,
        confirmation: NoConf,
    },
    AsProfile {
        id: 36,
        asn: 3257,
        name: "GTT Comm.",
        astype: Transit,
        traces_sent: 489_738,
        ips_discovered: 234_639,
        confirmation: NoConf,
    },
    AsProfile {
        id: 37,
        asn: 6453,
        name: "Tata Comm.",
        astype: Transit,
        traces_sent: 275_874,
        ips_discovered: 92_854,
        confirmation: NoConf,
    },
    AsProfile {
        id: 38,
        asn: 6762,
        name: "Telecom Italia",
        astype: Transit,
        traces_sent: 290_678,
        ips_discovered: 32_313,
        confirmation: NoConf,
    },
    AsProfile {
        id: 39,
        asn: 7473,
        name: "Singtel",
        astype: Transit,
        traces_sent: 9_549,
        ips_discovered: 5_206,
        confirmation: NoConf,
    },
    AsProfile {
        id: 40,
        asn: 6939,
        name: "Hurricane El.",
        astype: Transit,
        traces_sent: 652_399,
        ips_discovered: 192_324,
        confirmation: NoConf,
    },
    AsProfile {
        id: 41,
        asn: 9002,
        name: "RETN",
        astype: Transit,
        traces_sent: 526_697,
        ips_discovered: 27_270,
        confirmation: NoConf,
    },
    AsProfile {
        id: 42,
        asn: 2828,
        name: "Verizon",
        astype: Transit,
        traces_sent: 26_030,
        ips_discovered: 570,
        confirmation: NoConf,
    },
    AsProfile {
        id: 43,
        asn: 7922,
        name: "Comcast",
        astype: Transit,
        traces_sent: 272_360,
        ips_discovered: 40_382,
        confirmation: NoConf,
    },
    AsProfile {
        id: 44,
        asn: 11232,
        name: "Midco-Net",
        astype: Transit,
        traces_sent: 3_153,
        ips_discovered: 1_071,
        confirmation: Survey,
    },
    AsProfile {
        id: 45,
        asn: 13855,
        name: "CFU-NET",
        astype: Transit,
        traces_sent: 143,
        ips_discovered: 72,
        confirmation: Survey,
    },
    AsProfile {
        id: 46,
        asn: 293,
        name: "ESnet",
        astype: Transit,
        traces_sent: 277_155,
        ips_discovered: 307,
        confirmation: Survey,
    },
    AsProfile {
        id: 47,
        asn: 31034,
        name: "Aruba",
        astype: Transit,
        traces_sent: 1_186,
        ips_discovered: 346,
        confirmation: Survey,
    },
    AsProfile {
        id: 48,
        asn: 31631,
        name: "Elevate",
        astype: Transit,
        traces_sent: 73,
        ips_discovered: 64,
        confirmation: Survey,
    },
    AsProfile {
        id: 49,
        asn: 32440,
        name: "Loni",
        astype: Transit,
        traces_sent: 401,
        ips_discovered: 70,
        confirmation: Survey,
    },
    AsProfile {
        id: 50,
        asn: 33362,
        name: "Wiktel",
        astype: Transit,
        traces_sent: 117,
        ips_discovered: 39,
        confirmation: Survey,
    },
    AsProfile {
        id: 51,
        asn: 44092,
        name: "Halservice",
        astype: Transit,
        traces_sent: 140,
        ips_discovered: 86,
        confirmation: Survey,
    },
    AsProfile {
        id: 52,
        asn: 7794,
        name: "Execulink",
        astype: Transit,
        traces_sent: 599,
        ips_discovered: 141,
        confirmation: Survey,
    },
    AsProfile {
        id: 53,
        asn: 3320,
        name: "Deutsche Telekom",
        astype: Tier1,
        traces_sent: 370_152,
        ips_discovered: 65_995,
        confirmation: Cisco,
    },
    AsProfile {
        id: 54,
        asn: 2914,
        name: "NTT Comm.",
        astype: Tier1,
        traces_sent: 504_001,
        ips_discovered: 209_589,
        confirmation: Cisco,
    },
    AsProfile {
        id: 55,
        asn: 5511,
        name: "Orange",
        astype: Tier1,
        traces_sent: 51_979,
        ips_discovered: 21_376,
        confirmation: Cisco,
    },
    AsProfile {
        id: 56,
        asn: 4637,
        name: "Telstra",
        astype: Tier1,
        traces_sent: 62_075,
        ips_discovered: 18_010,
        confirmation: NoConf,
    },
    AsProfile {
        id: 57,
        asn: 1273,
        name: "Vodafone",
        astype: Tier1,
        traces_sent: 24_308,
        ips_discovered: 8_248,
        confirmation: Cisco,
    },
    AsProfile {
        id: 58,
        asn: 1299,
        name: "Arelion",
        astype: Tier1,
        traces_sent: 615_851,
        ips_discovered: 339_007,
        confirmation: NoConf,
    },
    AsProfile {
        id: 59,
        asn: 174,
        name: "Cogent",
        astype: Tier1,
        traces_sent: 539_127,
        ips_discovered: 217_700,
        confirmation: NoConf,
    },
    AsProfile {
        id: 60,
        asn: 3356,
        name: "Level3",
        astype: Tier1,
        traces_sent: 468_812,
        ips_discovered: 174_373,
        confirmation: NoConf,
    },
];

/// Looks a profile up by paper identifier.
pub fn by_id(id: u8) -> Option<&'static AsProfile> {
    CATALOG.get(usize::from(id).checked_sub(1)?)
}

/// Looks a profile up by ASN.
pub fn by_asn(asn: u32) -> Option<&'static AsProfile> {
    CATALOG.iter().find(|p| p.asn == asn)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_60_rows_in_id_order() {
        assert_eq!(CATALOG.len(), 60);
        for (i, entry) in CATALOG.iter().enumerate() {
            assert_eq!(entry.id as usize, i + 1);
        }
    }

    #[test]
    fn confirmation_counts_match_section5() {
        let cisco = CATALOG.iter().filter(|p| p.confirmation == Confirmation::Cisco).count();
        let survey = CATALOG.iter().filter(|p| p.confirmation == Confirmation::Survey).count();
        let none = CATALOG.iter().filter(|p| p.confirmation == Confirmation::None).count();
        assert_eq!(cisco, 25, "25 ASes per private communication with Cisco");
        assert_eq!(survey, 10, "ten ASes confirmed through the survey");
        assert_eq!(none, 25, "25 from CAIDA AS rank");
    }

    #[test]
    fn type_ranges_match_the_identifier_blocks() {
        for entry in &CATALOG {
            let expected = match entry.id {
                1..=12 => AsType::Stub,
                13..=25 => AsType::Content,
                26..=52 => AsType::Transit,
                _ => AsType::Tier1,
            };
            assert_eq!(entry.astype, expected, "#{}", entry.id);
        }
    }

    #[test]
    fn exclusion_rule_drops_exactly_the_19_paper_ases() {
        let excluded: Vec<u8> = CATALOG.iter().filter(|p| !p.analyzed()).map(|p| p.id).collect();
        assert_eq!(
            excluded,
            vec![1, 4, 5, 6, 8, 9, 10, 11, 12, 18, 21, 22, 23, 32, 45, 48, 49, 50, 51],
            "the 19 ASes with fewer than 100 discovered addresses"
        );
        assert_eq!(CATALOG.iter().filter(|p| p.analyzed()).count(), 41);
    }

    #[test]
    fn analyzed_claimants_number_20() {
        // §6.2: "the 20 analyzed ASes that have claimed to deploy
        // Segment Routing".
        let claimed_analyzed = CATALOG.iter().filter(|p| p.analyzed() && p.claims_sr()).count();
        assert_eq!(claimed_analyzed, 20);
    }

    #[test]
    fn lookups_work() {
        assert_eq!(by_id(46).unwrap().name, "ESnet");
        assert_eq!(by_asn(293).unwrap().id, 46);
        assert_eq!(by_id(0), None);
        assert_eq!(by_id(61), None);
        assert_eq!(by_asn(99_999), None);
    }

    #[test]
    fn esnet_is_the_ground_truth_reference() {
        let esnet = by_id(46).unwrap();
        assert_eq!(esnet.asn, 293);
        assert_eq!(esnet.confirmation, Confirmation::Survey);
        assert!(esnet.analyzed());
    }
}
