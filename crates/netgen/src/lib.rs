//! # arest-netgen
//!
//! The synthetic Internet generator — the substitute for the paper's
//! measurement substrate (the real IPv4 Internet, 60 target ASes,
//! 50 cloud vantage points).
//!
//! The generator is *mechanistic*, not distributional: it does not
//! paint label values onto traces; it deploys real control planes
//! (LDP from `arest-mpls`, SR-MPLS from `arest-sr`) over generated
//! topologies with per-AS operational profiles (vendor mixes,
//! ttl-propagate / RFC 4950 configs, SRGB customization, SNMP
//! exposure), so every signal AReST later detects arises for the same
//! causal reason as in the wild.
//!
//! * [`catalog`] — the paper's Table 5: the 60 target ASes with their
//!   type, size, and SR-MPLS confirmation source.
//! * [`profile`] — per-AS deployment profiles derived from the
//!   catalog plus the paper's observations (§5–§7, Appendix C).
//! * [`builder`] — builds one AS: topology, LDP/SR domains,
//!   interworking, policies, visibility and management-plane configs.
//! * [`internet`] — assembles the full Internet: all 60 ASes, the 50
//!   vantage points, inter-AS wiring, the BGP view, and the ground
//!   truth record used for validation.
//! * [`longitudinal`] — the synthetic CAIDA/RIPE-style longitudinal
//!   archive behind Fig. 7 (LSE stack sizes, 2015–2025).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod catalog;
pub mod internet;
pub mod longitudinal;
pub mod profile;

pub use catalog::{AsProfile, AsType, Confirmation, CATALOG};
pub use internet::{GenConfig, GroundTruth, Internet, RouteSpec, VpSpec};
pub use profile::DeploymentProfile;
