//! ICMP messages (RFC 792) with multi-part extensions (RFC 4884) and
//! the MPLS Label Stack object (RFC 4950).
//!
//! RFC 4950 is the mechanism that makes MPLS tunnels *explicit* to
//! traceroute: when an LSE TTL expires, a compliant LSR quotes the
//! entire received label stack in an extension object appended to the
//! ICMP time-exceeded message. AReST consumes exactly that quotation.
//!
//! Layout of an extended time-exceeded message:
//!
//! ```text
//! type(11) code(0) checksum
//! unused(1 byte) length(1 byte, 32-bit words of original datagram) unused(2)
//! original datagram (padded to length*4 bytes, >= 128 when extended)
//! extension header: version(2)<<4 | reserved, reserved, checksum
//!   object: length, class(1 = MPLS LS), ctype(1 = incoming stack)
//!     LSEs ...
//! ```

use crate::checksum;
use crate::error::{WireError, WireResult};
use crate::mpls::LabelStack;
use std::sync::LazyLock;

/// `(wire.icmp.parsed, wire.icmp.parse_errors)` — cached handles into
/// the global `arest-obs` registry (free when observability is off).
static PARSE_METRICS: LazyLock<(arest_obs::Counter, arest_obs::Counter)> = LazyLock::new(|| {
    let registry = arest_obs::global();
    (registry.counter("wire.icmp.parsed"), registry.counter("wire.icmp.parse_errors"))
});

/// ICMP header length (type, code, checksum, 4 rest-of-header bytes).
pub const HEADER_LEN: usize = 8;

/// RFC 4884: when an extension is present the original datagram part
/// is padded to at least 128 bytes.
pub const ORIGINAL_DATAGRAM_MIN_LEN: usize = 128;

/// RFC 4884 extension version.
pub const EXTENSION_VERSION: u8 = 2;

/// RFC 4950 class number for the MPLS Label Stack object.
pub const MPLS_CLASS: u8 = 1;

/// RFC 4950 c-type for "incoming MPLS label stack".
pub const MPLS_CTYPE_INCOMING: u8 = 1;

/// ICMP message types used by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IcmpType {
    /// Echo Reply (0).
    EchoReply,
    /// Destination Unreachable (3).
    DestUnreachable,
    /// Echo Request (8).
    EchoRequest,
    /// Time Exceeded (11).
    TimeExceeded,
    /// Any other type, kept verbatim.
    Other(u8),
}

impl From<u8> for IcmpType {
    fn from(value: u8) -> IcmpType {
        match value {
            0 => IcmpType::EchoReply,
            3 => IcmpType::DestUnreachable,
            8 => IcmpType::EchoRequest,
            11 => IcmpType::TimeExceeded,
            other => IcmpType::Other(other),
        }
    }
}

impl From<IcmpType> for u8 {
    fn from(value: IcmpType) -> u8 {
        match value {
            IcmpType::EchoReply => 0,
            IcmpType::DestUnreachable => 3,
            IcmpType::EchoRequest => 8,
            IcmpType::TimeExceeded => 11,
            IcmpType::Other(other) => other,
        }
    }
}

/// The RFC 4950 MPLS Label Stack extension object.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MplsExtension {
    /// The label stack quoted from the packet whose TTL expired,
    /// top entry first.
    pub stack: LabelStack,
}

impl MplsExtension {
    /// Wire length: extension header (4) + object header (4) + LSEs.
    pub fn wire_len(&self) -> usize {
        4 + 4 + self.stack.wire_len()
    }

    /// Emits the extension structure (header + MPLS object) into `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> WireResult<()> {
        let len = self.wire_len();
        if buf.len() < len {
            return Err(WireError::Truncated);
        }
        buf[0] = EXTENSION_VERSION << 4;
        buf[1] = 0;
        buf[2] = 0;
        buf[3] = 0;
        let obj_len = u16::try_from(4 + self.stack.wire_len()).map_err(|_| WireError::Malformed)?;
        buf[4..6].copy_from_slice(&obj_len.to_be_bytes());
        buf[6] = MPLS_CLASS;
        buf[7] = MPLS_CTYPE_INCOMING;
        self.stack.emit(&mut buf[8..len])?;
        let c = checksum::checksum(&buf[..len]);
        buf[2..4].copy_from_slice(&c.to_be_bytes());
        Ok(())
    }

    /// Parses an extension structure, returning the first MPLS Label
    /// Stack object found (other object classes are skipped).
    pub fn parse(buf: &[u8]) -> WireResult<Option<MplsExtension>> {
        if buf.len() < 4 {
            return Err(WireError::Truncated);
        }
        if buf[0] >> 4 != EXTENSION_VERSION {
            return Err(WireError::BadVersion);
        }
        if !checksum::verify(buf) {
            return Err(WireError::BadChecksum);
        }
        let mut offset = 4;
        while offset + 4 <= buf.len() {
            let obj_len = usize::from(u16::from_be_bytes([buf[offset], buf[offset + 1]]));
            let class = buf[offset + 2];
            let ctype = buf[offset + 3];
            if obj_len < 4 || offset + obj_len > buf.len() {
                return Err(WireError::Malformed);
            }
            if class == MPLS_CLASS && ctype == MPLS_CTYPE_INCOMING {
                let stack = LabelStack::parse(&buf[offset + 4..offset + obj_len])?;
                return Ok(Some(MplsExtension { stack }));
            }
            offset += obj_len;
        }
        Ok(None)
    }
}

/// A decoded ICMP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcmpMessage {
    /// Echo request carrying an identifier and sequence number.
    EchoRequest {
        /// Identifier, usually the prober's session id.
        ident: u16,
        /// Sequence number.
        seq: u16,
    },
    /// Echo reply mirroring the request's identifier and sequence.
    EchoReply {
        /// Identifier echoed back.
        ident: u16,
        /// Sequence echoed back.
        seq: u16,
    },
    /// Time exceeded (TTL expiry in transit), quoting the offending
    /// datagram and, for RFC 4950 routers, the incoming label stack.
    TimeExceeded {
        /// The quoted original datagram (IPv4 header + leading payload).
        original: Vec<u8>,
        /// The RFC 4950 MPLS extension, if the router emitted one.
        extension: Option<MplsExtension>,
    },
    /// Destination unreachable with the given code (3 = port
    /// unreachable, the signal that a UDP probe reached its target).
    DestUnreachable {
        /// The unreachable code.
        code: u8,
        /// The quoted original datagram.
        original: Vec<u8>,
        /// The RFC 4950 MPLS extension, if present.
        extension: Option<MplsExtension>,
    },
}

impl IcmpMessage {
    /// The ICMP type of this message.
    pub fn icmp_type(&self) -> IcmpType {
        match self {
            IcmpMessage::EchoRequest { .. } => IcmpType::EchoRequest,
            IcmpMessage::EchoReply { .. } => IcmpType::EchoReply,
            IcmpMessage::TimeExceeded { .. } => IcmpType::TimeExceeded,
            IcmpMessage::DestUnreachable { .. } => IcmpType::DestUnreachable,
        }
    }

    /// The quoted MPLS extension, for error messages that carry one.
    pub fn mpls_extension(&self) -> Option<&MplsExtension> {
        match self {
            IcmpMessage::TimeExceeded { extension, .. }
            | IcmpMessage::DestUnreachable { extension, .. } => extension.as_ref(),
            _ => None,
        }
    }

    /// The quoted original datagram, for error messages.
    pub fn original_datagram(&self) -> Option<&[u8]> {
        match self {
            IcmpMessage::TimeExceeded { original, .. }
            | IcmpMessage::DestUnreachable { original, .. } => Some(original),
            _ => None,
        }
    }

    /// Emitted wire length in bytes.
    pub fn buffer_len(&self) -> usize {
        match self {
            IcmpMessage::EchoRequest { .. } | IcmpMessage::EchoReply { .. } => HEADER_LEN,
            IcmpMessage::TimeExceeded { original, extension }
            | IcmpMessage::DestUnreachable { original, extension, .. } => {
                let quoted = match extension {
                    Some(_) => original.len().max(ORIGINAL_DATAGRAM_MIN_LEN).div_ceil(4) * 4,
                    None => original.len(),
                };
                HEADER_LEN + quoted + extension.as_ref().map_or(0, MplsExtension::wire_len)
            }
        }
    }

    /// Emits the message (with checksum) into `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> WireResult<()> {
        let total = self.buffer_len();
        if buf.len() < total {
            return Err(WireError::Truncated);
        }
        let buf = &mut buf[..total];
        buf.fill(0);
        buf[0] = u8::from(self.icmp_type());
        match self {
            IcmpMessage::EchoRequest { ident, seq } | IcmpMessage::EchoReply { ident, seq } => {
                buf[4..6].copy_from_slice(&ident.to_be_bytes());
                buf[6..8].copy_from_slice(&seq.to_be_bytes());
            }
            IcmpMessage::TimeExceeded { original, extension }
            | IcmpMessage::DestUnreachable { original, extension, .. } => {
                if let IcmpMessage::DestUnreachable { code, .. } = self {
                    buf[1] = *code;
                }
                let quoted_len = match extension {
                    Some(_) => original.len().max(ORIGINAL_DATAGRAM_MIN_LEN).div_ceil(4) * 4,
                    None => original.len(),
                };
                buf[HEADER_LEN..HEADER_LEN + original.len()].copy_from_slice(original);
                if let Some(ext) = extension {
                    // RFC 4884: the length field counts 32-bit words of
                    // the padded original datagram. For time-exceeded it
                    // lives in the second rest-of-header byte.
                    let words = u8::try_from(quoted_len / 4).map_err(|_| WireError::Malformed)?;
                    buf[5] = words;
                    ext.emit(&mut buf[HEADER_LEN + quoted_len..])?;
                }
            }
        }
        let c = checksum::checksum(buf);
        buf[2..4].copy_from_slice(&c.to_be_bytes());
        Ok(())
    }

    /// Returns the wire encoding as an owned vector. Fails like
    /// [`IcmpMessage::emit`] when a quoted datagram or extension
    /// cannot be encoded.
    pub fn to_bytes(&self) -> WireResult<Vec<u8>> {
        let mut buf = vec![0u8; self.buffer_len()];
        self.emit(&mut buf)?;
        Ok(buf)
    }

    /// Parses an ICMP message, verifying its checksum.
    pub fn parse(buf: &[u8]) -> WireResult<IcmpMessage> {
        let parsed = Self::parse_inner(buf);
        let metrics = &*PARSE_METRICS;
        metrics.0.inc();
        if parsed.is_err() {
            metrics.1.inc();
        }
        parsed
    }

    fn parse_inner(buf: &[u8]) -> WireResult<IcmpMessage> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if !checksum::verify(buf) {
            return Err(WireError::BadChecksum);
        }
        let icmp_type = IcmpType::from(buf[0]);
        let code = buf[1];
        match icmp_type {
            IcmpType::EchoRequest | IcmpType::EchoReply => {
                let ident = u16::from_be_bytes([buf[4], buf[5]]);
                let seq = u16::from_be_bytes([buf[6], buf[7]]);
                Ok(match icmp_type {
                    IcmpType::EchoRequest => IcmpMessage::EchoRequest { ident, seq },
                    _ => IcmpMessage::EchoReply { ident, seq },
                })
            }
            IcmpType::TimeExceeded | IcmpType::DestUnreachable => {
                let length_words = usize::from(buf[5]);
                let (original, extension) = if length_words > 0 {
                    // RFC 4884 multi-part message.
                    let quoted_len = length_words * 4;
                    if HEADER_LEN + quoted_len > buf.len() {
                        return Err(WireError::Truncated);
                    }
                    let original = buf[HEADER_LEN..HEADER_LEN + quoted_len].to_vec();
                    let ext = MplsExtension::parse(&buf[HEADER_LEN + quoted_len..])?;
                    (original, ext)
                } else {
                    (buf[HEADER_LEN..].to_vec(), None)
                };
                Ok(match icmp_type {
                    IcmpType::TimeExceeded => IcmpMessage::TimeExceeded { original, extension },
                    _ => IcmpMessage::DestUnreachable { code, original, extension },
                })
            }
            IcmpType::Other(_) => Err(WireError::Malformed),
        }
    }
}

/// A thin checked view exposing type/code/checksum of a raw buffer.
#[derive(Debug, Clone)]
pub struct IcmpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> IcmpPacket<T> {
    /// Wraps a buffer, validating the minimum length.
    pub fn new_checked(buffer: T) -> WireResult<IcmpPacket<T>> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(IcmpPacket { buffer })
    }

    /// The message type.
    pub fn icmp_type(&self) -> IcmpType {
        IcmpType::from(self.buffer.as_ref()[0])
    }

    /// The message code.
    pub fn code(&self) -> u8 {
        self.buffer.as_ref()[1]
    }

    /// Whether the stored checksum verifies.
    pub fn verify_checksum(&self) -> bool {
        checksum::verify(self.buffer.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpls::Label;
    use proptest::prelude::*;

    fn stack(labels: &[u32]) -> LabelStack {
        let labels: Vec<Label> = labels.iter().map(|&l| Label::new(l).unwrap()).collect();
        LabelStack::from_labels(&labels, 1)
    }

    #[test]
    fn echo_round_trip() {
        let msg = IcmpMessage::EchoRequest { ident: 77, seq: 4242 };
        assert_eq!(IcmpMessage::parse(&msg.to_bytes().unwrap()).unwrap(), msg);
        let msg = IcmpMessage::EchoReply { ident: 1, seq: 2 };
        assert_eq!(IcmpMessage::parse(&msg.to_bytes().unwrap()).unwrap(), msg);
    }

    #[test]
    fn time_exceeded_without_extension() {
        let original = vec![0xaa; 28];
        let msg = IcmpMessage::TimeExceeded { original: original.clone(), extension: None };
        let parsed = IcmpMessage::parse(&msg.to_bytes().unwrap()).unwrap();
        assert_eq!(parsed.original_datagram().unwrap(), &original[..]);
        assert!(parsed.mpls_extension().is_none());
    }

    #[test]
    fn time_exceeded_with_rfc4950_extension() {
        let original = vec![0x45; 28];
        let ext = MplsExtension { stack: stack(&[16_005, 24_001]) };
        let msg =
            IcmpMessage::TimeExceeded { original: original.clone(), extension: Some(ext.clone()) };
        let bytes = msg.to_bytes().unwrap();
        let parsed = IcmpMessage::parse(&bytes).unwrap();
        // The quoted datagram is padded to 128 bytes per RFC 4884.
        let quoted = parsed.original_datagram().unwrap();
        assert_eq!(quoted.len(), ORIGINAL_DATAGRAM_MIN_LEN);
        assert_eq!(&quoted[..original.len()], &original[..]);
        assert_eq!(parsed.mpls_extension().unwrap(), &ext);
    }

    #[test]
    fn dest_unreachable_round_trip() {
        let msg = IcmpMessage::DestUnreachable {
            code: 3,
            original: vec![1; 28],
            extension: Some(MplsExtension { stack: stack(&[30_000]) }),
        };
        let parsed = IcmpMessage::parse(&msg.to_bytes().unwrap()).unwrap();
        assert_eq!(parsed, msg_with_padded_original(msg.clone()));
        match parsed {
            IcmpMessage::DestUnreachable { code, .. } => assert_eq!(code, 3),
            _ => panic!("wrong variant"),
        }
    }

    /// Emitting pads the original datagram; mirror that for equality checks.
    fn msg_with_padded_original(msg: IcmpMessage) -> IcmpMessage {
        match msg {
            IcmpMessage::TimeExceeded { mut original, extension } => {
                if extension.is_some() {
                    original.resize(ORIGINAL_DATAGRAM_MIN_LEN, 0);
                }
                IcmpMessage::TimeExceeded { original, extension }
            }
            IcmpMessage::DestUnreachable { code, mut original, extension } => {
                if extension.is_some() {
                    original.resize(ORIGINAL_DATAGRAM_MIN_LEN, 0);
                }
                IcmpMessage::DestUnreachable { code, original, extension }
            }
            other => other,
        }
    }

    #[test]
    fn corrupted_checksum_is_rejected() {
        let mut bytes = IcmpMessage::EchoReply { ident: 5, seq: 6 }.to_bytes().unwrap();
        bytes[4] ^= 0xff;
        assert_eq!(IcmpMessage::parse(&bytes).unwrap_err(), WireError::BadChecksum);
    }

    #[test]
    fn corrupted_extension_checksum_is_rejected() {
        let ext = MplsExtension { stack: stack(&[16_000]) };
        let msg = IcmpMessage::TimeExceeded { original: vec![0; 28], extension: Some(ext) };
        let mut bytes = msg.to_bytes().unwrap();
        let ext_start = HEADER_LEN + ORIGINAL_DATAGRAM_MIN_LEN;
        bytes[ext_start + 8] ^= 0x01; // flip a bit inside the first LSE
                                      // Fix the outer ICMP checksum so only the extension checksum fails.
        bytes[2] = 0;
        bytes[3] = 0;
        let c = checksum::checksum(&bytes);
        bytes[2..4].copy_from_slice(&c.to_be_bytes());
        assert_eq!(IcmpMessage::parse(&bytes).unwrap_err(), WireError::BadChecksum);
    }

    #[test]
    fn extension_skips_foreign_objects() {
        // Build an extension with a non-MPLS object before the MPLS one.
        let mpls = MplsExtension { stack: stack(&[17_005]) };
        let mut buf = vec![0u8; 4 + 8 + mpls.wire_len() - 4];
        buf[0] = EXTENSION_VERSION << 4;
        // Foreign object: length 8, class 3 (interface info), ctype 1.
        buf[4..6].copy_from_slice(&8u16.to_be_bytes());
        buf[6] = 3;
        buf[7] = 1;
        // MPLS object afterwards.
        let obj_len = 4 + mpls.stack.wire_len();
        buf[12..14].copy_from_slice(&(obj_len as u16).to_be_bytes());
        buf[14] = MPLS_CLASS;
        buf[15] = MPLS_CTYPE_INCOMING;
        mpls.stack.emit(&mut buf[16..]).unwrap();
        let c = checksum::checksum(&buf);
        buf[2..4].copy_from_slice(&c.to_be_bytes());
        assert_eq!(MplsExtension::parse(&buf).unwrap().unwrap(), mpls);
    }

    #[test]
    fn extension_absent_returns_none() {
        let mut buf = vec![0u8; 4];
        buf[0] = EXTENSION_VERSION << 4;
        let c = checksum::checksum(&buf);
        buf[2..4].copy_from_slice(&c.to_be_bytes());
        assert_eq!(MplsExtension::parse(&buf).unwrap(), None);
    }

    #[test]
    fn extension_bad_version() {
        let buf = [0x10, 0, 0, 0];
        assert_eq!(MplsExtension::parse(&buf).unwrap_err(), WireError::BadVersion);
    }

    #[test]
    fn icmp_packet_view() {
        let bytes = IcmpMessage::EchoRequest { ident: 9, seq: 10 }.to_bytes().unwrap();
        let view = IcmpPacket::new_checked(&bytes[..]).unwrap();
        assert_eq!(view.icmp_type(), IcmpType::EchoRequest);
        assert_eq!(view.code(), 0);
        assert!(view.verify_checksum());
        assert!(IcmpPacket::new_checked(&bytes[..4]).is_err());
    }

    proptest! {
        #[test]
        fn prop_time_exceeded_round_trip(
            original in prop::collection::vec(any::<u8>(), 20..120),
            labels in prop::collection::vec(0u32..=crate::mpls::MAX_LABEL, 1..8),
            with_ext: bool,
        ) {
            let extension = with_ext.then(|| MplsExtension { stack: stack(&labels) });
            let msg = IcmpMessage::TimeExceeded { original: original.clone(), extension: extension.clone() };
            let parsed = IcmpMessage::parse(&msg.to_bytes().unwrap()).unwrap();
            match parsed {
                IcmpMessage::TimeExceeded { original: got, extension: got_ext } => {
                    prop_assert_eq!(&got[..original.len()], &original[..]);
                    prop_assert_eq!(got_ext, extension);
                }
                _ => prop_assert!(false, "wrong variant"),
            }
        }

        #[test]
        fn prop_echo_round_trip(ident: u16, seq: u16) {
            let msg = IcmpMessage::EchoRequest { ident, seq };
            prop_assert_eq!(IcmpMessage::parse(&msg.to_bytes().unwrap()).unwrap(), msg);
        }
    }
}
