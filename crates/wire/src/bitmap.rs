//! A packed validity bitmap for columnar (struct-of-arrays) layouts.
//!
//! Columnar stores keep optional columns as a dense value array plus a
//! [`Bitmap`] saying which rows actually hold a value — an `Option`
//! flattened into one bit per row, 64 rows per machine word. Both the
//! trace arena (`arest-tnt`) and the augmented-trace arena
//! (`arest-core`) index their columns with it, which is why it lives
//! here at the bottom of the crate graph.

/// An append-only bit vector packed into `u64` words.
///
/// Bits are addressed LSB-first within each word: bit `i` lives at
/// `words[i / 64] >> (i % 64) & 1`. All operations are branch-light;
/// `get` on an out-of-range index panics like a slice would.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    /// Creates an empty bitmap with room for `bits` entries.
    pub fn with_capacity(bits: usize) -> Bitmap {
        Bitmap { words: Vec::with_capacity(bits.div_ceil(64)), len: 0 }
    }

    /// Number of bits stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= u64::from(bit) << (self.len % 64);
        self.len += 1;
    }

    /// Reads bit `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= len()`.
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "bit index {index} out of range (len {})", self.len);
        self.words[index / 64] >> (index % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip_across_word_boundaries() {
        let mut bitmap = Bitmap::with_capacity(200);
        let pattern: Vec<bool> = (0..200).map(|i| i % 3 == 0 || i % 64 == 63).collect();
        for &bit in &pattern {
            bitmap.push(bit);
        }
        assert_eq!(bitmap.len(), 200);
        for (i, &bit) in pattern.iter().enumerate() {
            assert_eq!(bitmap.get(i), bit, "bit {i}");
        }
        assert_eq!(bitmap.count_ones(), pattern.iter().filter(|&&b| b).count());
    }

    #[test]
    fn empty_bitmap_has_no_bits() {
        let bitmap = Bitmap::new();
        assert!(bitmap.is_empty());
        assert_eq!(bitmap.len(), 0);
        assert_eq!(bitmap.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let mut bitmap = Bitmap::new();
        bitmap.push(true);
        let _ = bitmap.get(1);
    }
}
