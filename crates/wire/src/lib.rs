//! # arest-wire
//!
//! Wire formats used throughout the AReST reproduction.
//!
//! This crate provides smoltcp-style *views* over byte buffers for the
//! protocols that matter to MPLS-aware traceroute measurement:
//!
//! * [`mpls`] — the 4-byte MPLS label stack entry (RFC 3032) and label
//!   stacks, including the 20-bit label arithmetic AReST's detection
//!   flags reason about.
//! * [`ipv4`] — a minimal IPv4 header codec (no options) sufficient for
//!   probe packets and ICMP quoting.
//! * [`udp`] — the UDP header used by Paris-traceroute-style probes.
//! * [`icmp`] — ICMP messages, including the RFC 4884 extension
//!   structure and the RFC 4950 MPLS Label Stack object through which
//!   real routers expose LSEs to traceroute.
//! * [`bitmap`] — a packed validity bitmap shared by the columnar
//!   (struct-of-arrays) trace stores built on top of these formats.
//!
//! Each protocol offers two layers, following the idiom of smoltcp:
//! a `Packet<T: AsRef<[u8]>>` wrapper giving checked field access over
//! raw bytes, and an owned `Repr` struct for parse/emit round trips.
//! All multi-byte fields are big-endian (network order).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmap;
pub mod checksum;
pub mod error;
pub mod icmp;
pub mod ipv4;
pub mod mpls;
pub mod udp;

pub use bitmap::Bitmap;
pub use error::{WireError, WireResult};
pub use icmp::{IcmpMessage, IcmpPacket, IcmpType, MplsExtension};
pub use ipv4::{Ipv4Packet, Ipv4Repr, Protocol};
pub use mpls::{Label, LabelStack, Lse};
pub use udp::{UdpPacket, UdpRepr};
