//! A minimal IPv4 header codec (RFC 791, options unsupported).
//!
//! Probe packets and quoted datagrams in the AReST pipeline never use
//! IPv4 options, so the codec fixes IHL at 5 on emit and rejects
//! packets advertising an IHL shorter than the minimum on parse
//! (packets with options parse fine; their options are skipped).

use crate::checksum;
use crate::error::{WireError, WireResult};
use core::fmt;
use std::net::Ipv4Addr;

/// Length in bytes of an option-less IPv4 header.
pub const HEADER_LEN: usize = 20;

/// IP protocol numbers used in this workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// ICMP (1).
    Icmp,
    /// UDP (17).
    Udp,
    /// Anything else, kept verbatim.
    Other(u8),
}

impl From<u8> for Protocol {
    fn from(value: u8) -> Protocol {
        match value {
            1 => Protocol::Icmp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

impl From<Protocol> for u8 {
    fn from(value: Protocol) -> u8 {
        match value {
            Protocol::Icmp => 1,
            Protocol::Udp => 17,
            Protocol::Other(other) => other,
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Icmp => write!(f, "ICMP"),
            Protocol::Udp => write!(f, "UDP"),
            Protocol::Other(p) => write!(f, "proto-{p}"),
        }
    }
}

/// A read/write view over an IPv4 packet buffer.
#[derive(Debug, Clone)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Ipv4Packet<T> {
        Ipv4Packet { buffer }
    }

    /// Wraps a buffer, validating version, IHL, and total length.
    pub fn new_checked(buffer: T) -> WireResult<Ipv4Packet<T>> {
        let packet = Ipv4Packet::new_unchecked(buffer);
        packet.check()?;
        Ok(packet)
    }

    fn check(&self) -> WireResult<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if data[0] >> 4 != 4 {
            return Err(WireError::BadVersion);
        }
        let ihl = usize::from(data[0] & 0xf) * 4;
        if ihl < HEADER_LEN || data.len() < ihl {
            return Err(WireError::Malformed);
        }
        let total_len = usize::from(u16::from_be_bytes([data[2], data[3]]));
        if total_len < ihl || data.len() < total_len {
            return Err(WireError::Truncated);
        }
        Ok(())
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[0] & 0xf) * 4
    }

    /// The Total Length field.
    pub fn total_len(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[2], d[3]])
    }

    /// The Identification field.
    pub fn ident(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[4], d[5]])
    }

    /// The Time To Live field.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// The Protocol field.
    pub fn protocol(&self) -> Protocol {
        Protocol::from(self.buffer.as_ref()[9])
    }

    /// The header checksum field as stored.
    pub fn header_checksum(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[10], d[11]])
    }

    /// The source address.
    pub fn src_addr(&self) -> Ipv4Addr {
        let d = self.buffer.as_ref();
        Ipv4Addr::new(d[12], d[13], d[14], d[15])
    }

    /// The destination address.
    pub fn dst_addr(&self) -> Ipv4Addr {
        let d = self.buffer.as_ref();
        Ipv4Addr::new(d[16], d[17], d[18], d[19])
    }

    /// Whether the stored header checksum verifies.
    pub fn verify_checksum(&self) -> bool {
        let d = self.buffer.as_ref();
        checksum::verify(&d[..self.header_len()])
    }

    /// The payload following the header, bounded by Total Length.
    pub fn payload(&self) -> &[u8] {
        let d = self.buffer.as_ref();
        let start = self.header_len();
        let end = usize::from(self.total_len()).min(d.len());
        &d[start..end]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Sets the TTL and refreshes the header checksum.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[8] = ttl;
        self.fill_checksum();
    }

    /// Sets the Identification field and refreshes the checksum.
    pub fn set_ident(&mut self, ident: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&ident.to_be_bytes());
        self.fill_checksum();
    }

    /// Recomputes and stores the header checksum.
    pub fn fill_checksum(&mut self) {
        let header_len = self.header_len();
        let d = self.buffer.as_mut();
        d[10] = 0;
        d[11] = 0;
        let c = checksum::checksum(&d[..header_len]);
        d[10..12].copy_from_slice(&c.to_be_bytes());
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let start = self.header_len();
        let end = usize::from(self.total_len());
        let d = self.buffer.as_mut();
        let end = end.min(d.len());
        &mut d[start..end]
    }
}

/// An owned, high-level IPv4 header representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Repr {
    /// Source address.
    pub src_addr: Ipv4Addr,
    /// Destination address.
    pub dst_addr: Ipv4Addr,
    /// Transport protocol.
    pub protocol: Protocol,
    /// Time to live.
    pub ttl: u8,
    /// Identification (used by MIDAR-style alias resolution).
    pub ident: u16,
    /// Payload length in bytes (excludes the 20-byte header).
    pub payload_len: usize,
}

impl Ipv4Repr {
    /// Parses the header fields out of a checked packet view.
    pub fn parse<T: AsRef<[u8]>>(packet: &Ipv4Packet<T>) -> WireResult<Ipv4Repr> {
        Ok(Ipv4Repr {
            src_addr: packet.src_addr(),
            dst_addr: packet.dst_addr(),
            protocol: packet.protocol(),
            ttl: packet.ttl(),
            ident: packet.ident(),
            payload_len: usize::from(packet.total_len()) - packet.header_len(),
        })
    }

    /// Total emitted length: header plus payload.
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emits a 20-byte header (IHL 5, no fragmentation, DSCP 0) into
    /// `buf` and fills the checksum. The payload area is not touched.
    pub fn emit(&self, buf: &mut [u8]) -> WireResult<()> {
        if buf.len() < self.buffer_len() {
            return Err(WireError::Truncated);
        }
        let total_len = u16::try_from(self.buffer_len()).map_err(|_| WireError::Malformed)?;
        buf[0] = 0x45;
        buf[1] = 0;
        buf[2..4].copy_from_slice(&total_len.to_be_bytes());
        buf[4..6].copy_from_slice(&self.ident.to_be_bytes());
        buf[6..8].copy_from_slice(&[0, 0]); // flags + fragment offset
        buf[8] = self.ttl;
        buf[9] = u8::from(self.protocol);
        buf[10..12].copy_from_slice(&[0, 0]);
        buf[12..16].copy_from_slice(&self.src_addr.octets());
        buf[16..20].copy_from_slice(&self.dst_addr.octets());
        let c = checksum::checksum(&buf[..HEADER_LEN]);
        buf[10..12].copy_from_slice(&c.to_be_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_repr() -> Ipv4Repr {
        Ipv4Repr {
            src_addr: Ipv4Addr::new(10, 0, 0, 1),
            dst_addr: Ipv4Addr::new(192, 0, 2, 7),
            protocol: Protocol::Udp,
            ttl: 64,
            ident: 0xbeef,
            payload_len: 8,
        }
    }

    #[test]
    fn emit_parse_round_trip() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut buf).unwrap();
        let packet = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum());
        assert_eq!(Ipv4Repr::parse(&packet).unwrap(), repr);
    }

    #[test]
    fn checked_rejects_short_buffer() {
        assert_eq!(Ipv4Packet::new_checked(&[0u8; 10][..]).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn checked_rejects_wrong_version() {
        let mut buf = [0u8; 20];
        buf[0] = 0x65; // IPv6 version nibble
        buf[3] = 20;
        assert_eq!(Ipv4Packet::new_checked(&buf[..]).unwrap_err(), WireError::BadVersion);
    }

    #[test]
    fn checked_rejects_bad_ihl() {
        let mut buf = [0u8; 20];
        buf[0] = 0x43; // IHL 3 < 5
        buf[3] = 20;
        assert_eq!(Ipv4Packet::new_checked(&buf[..]).unwrap_err(), WireError::Malformed);
    }

    #[test]
    fn checked_rejects_total_len_beyond_buffer() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut buf).unwrap();
        buf[3] = 200; // total length larger than the buffer
        assert_eq!(Ipv4Packet::new_checked(&buf[..]).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn set_ttl_keeps_checksum_valid() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut buf).unwrap();
        let mut packet = Ipv4Packet::new_checked(&mut buf[..]).unwrap();
        packet.set_ttl(1);
        assert_eq!(packet.ttl(), 1);
        assert!(packet.verify_checksum());
    }

    #[test]
    fn payload_respects_total_len() {
        let repr = sample_repr();
        let mut buf = vec![0u8; repr.buffer_len() + 6]; // trailing padding
        repr.emit(&mut buf).unwrap();
        let packet = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.payload().len(), repr.payload_len);
    }

    #[test]
    fn protocol_conversions() {
        assert_eq!(Protocol::from(1), Protocol::Icmp);
        assert_eq!(Protocol::from(17), Protocol::Udp);
        assert_eq!(Protocol::from(6), Protocol::Other(6));
        assert_eq!(u8::from(Protocol::Icmp), 1);
        assert_eq!(u8::from(Protocol::Other(89)), 89);
    }

    proptest! {
        #[test]
        fn prop_round_trip(src: [u8; 4], dst: [u8; 4], ttl: u8, ident: u16,
                           proto: u8, payload_len in 0usize..64) {
            let repr = Ipv4Repr {
                src_addr: Ipv4Addr::from(src),
                dst_addr: Ipv4Addr::from(dst),
                protocol: Protocol::from(proto),
                ttl,
                ident,
                payload_len,
            };
            let mut buf = vec![0u8; repr.buffer_len()];
            repr.emit(&mut buf).unwrap();
            let packet = Ipv4Packet::new_checked(&buf[..]).unwrap();
            prop_assert!(packet.verify_checksum());
            prop_assert_eq!(Ipv4Repr::parse(&packet).unwrap(), repr);
        }
    }
}
