//! Error type shared by every codec in this crate.

use core::fmt;

/// Errors raised while parsing or emitting wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is too short to contain the claimed structure.
    Truncated,
    /// A field holds a value the codec cannot represent
    /// (e.g. a label above 2^20 - 1, an IHL below 5).
    Malformed,
    /// A checksum did not verify.
    BadChecksum,
    /// A version field does not match the expected protocol version.
    BadVersion,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated"),
            WireError::Malformed => write!(f, "malformed field"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::BadVersion => write!(f, "unexpected protocol version"),
        }
    }
}

impl std::error::Error for WireError {}

/// Convenience alias used by all parsing entry points.
pub type WireResult<T> = Result<T, WireError>;
