//! MPLS label stack entries (RFC 3032) and label stacks.
//!
//! The 4-byte label stack entry is the pivot of the whole AReST
//! methodology: routers quote these entries in ICMP time-exceeded
//! messages (RFC 4950), and AReST's detection flags reason about the
//! 20-bit label values they carry.
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |                Label                  | TC  |S|      TTL      |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! ```
//!
//! # Example
//!
//! ```
//! use arest_wire::mpls::{Label, LabelStack};
//!
//! // The Fig. 3 stack: node SID 104, adjacency SID 3001, node SID 108.
//! let labels: Vec<Label> =
//!     [104, 3_001, 108].iter().map(|&v| Label::new(v).unwrap()).collect();
//! let mut stack = LabelStack::from_labels(&labels, 255);
//! assert_eq!(stack.depth(), 3);
//!
//! // Wire round trip, bottom-of-stack bit on the last entry only.
//! let bytes = stack.to_bytes().unwrap();
//! assert_eq!(LabelStack::parse(&bytes).unwrap(), stack);
//!
//! // Pop the active segment, as router D does on receipt.
//! assert_eq!(stack.pop().unwrap().label.value(), 104);
//! assert_eq!(stack.top().unwrap().label.value(), 3_001);
//! ```

use crate::error::{WireError, WireResult};
use core::fmt;

/// Maximum representable 20-bit label value.
pub const MAX_LABEL: u32 = (1 << 20) - 1;

/// Size in bytes of one label stack entry on the wire.
pub const LSE_LEN: usize = 4;

/// Labels 0–15 are special-purpose (RFC 3032 / RFC 7274); 16–255 are
/// reserved. Dynamic allocation and SR blocks live above this value.
pub const FIRST_UNRESERVED_LABEL: u32 = 256;

/// A 20-bit MPLS label value.
///
/// The inner value is guaranteed to fit in 20 bits; construction via
/// [`Label::new`] enforces the bound.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(u32);

impl Label {
    /// IPv4 Explicit NULL (RFC 3032 §2.1).
    pub const IPV4_EXPLICIT_NULL: Label = Label(0);
    /// Router Alert (RFC 3032 §2.1).
    pub const ROUTER_ALERT: Label = Label(1);
    /// IPv6 Explicit NULL (RFC 3032 §2.1).
    pub const IPV6_EXPLICIT_NULL: Label = Label(2);
    /// Implicit NULL — advertised for penultimate hop popping, never
    /// seen on the wire (RFC 3032 §2.1).
    pub const IMPLICIT_NULL: Label = Label(3);
    /// Entropy Label Indicator (RFC 6790).
    pub const ENTROPY_INDICATOR: Label = Label(7);
    /// Generic Associated Channel Label (RFC 5586).
    pub const GAL: Label = Label(13);
    /// OAM Alert (RFC 3429).
    pub const OAM_ALERT: Label = Label(14);

    /// Creates a label, checking the 20-bit bound.
    pub fn new(value: u32) -> WireResult<Label> {
        if value > MAX_LABEL {
            Err(WireError::Malformed)
        } else {
            Ok(Label(value))
        }
    }

    /// Creates a label, truncating `value` to 20 bits.
    ///
    /// Useful for generators; prefer [`Label::new`] when the input is
    /// untrusted.
    pub const fn new_truncated(value: u32) -> Label {
        Label(value & MAX_LABEL)
    }

    /// The raw 20-bit value.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Whether this is a special-purpose label (0–15).
    pub const fn is_special_purpose(self) -> bool {
        self.0 < 16
    }

    /// Whether this label lies in the reserved range 0–255 that no
    /// dynamic pool nor SR block may allocate from.
    pub const fn is_reserved(self) -> bool {
        self.0 < FIRST_UNRESERVED_LABEL
    }

    /// Decimal suffix of the label, used by AReST's suffix-based
    /// sequence matching across differing SRGB bases (§2.3 / §4.1 of
    /// the paper: `16,005 → 13,005` share the suffix `005`).
    ///
    /// The suffix is defined as the label value modulo 10^3 — the SID
    /// index portion for SRGB blocks aligned on thousands, which is how
    /// the paper's example behaves.
    pub const fn suffix(self) -> u32 {
        self.0 % 1_000
    }

    /// Whether two labels "suffix-match": equal last three decimal
    /// digits but different values, the signature of the same SID index
    /// mapped through two different SRGB bases.
    pub const fn suffix_matches(self, other: Label) -> bool {
        self.0 != other.0 && self.suffix() == other.suffix()
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({})", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<u32> for Label {
    type Error = WireError;
    fn try_from(value: u32) -> WireResult<Label> {
        Label::new(value)
    }
}

impl From<Label> for u32 {
    fn from(label: Label) -> u32 {
        label.value()
    }
}

/// One decoded MPLS label stack entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lse {
    /// The 20-bit forwarding label.
    pub label: Label,
    /// The 3-bit Traffic Class field (RFC 5462).
    pub tc: u8,
    /// Bottom-of-stack flag: set on the last entry of the stack.
    pub bottom: bool,
    /// The 8-bit LSE TTL.
    pub ttl: u8,
}

impl Lse {
    /// Creates an LSE with TC 0, convenient for tests and generators.
    pub fn new(label: Label, bottom: bool, ttl: u8) -> Lse {
        Lse { label, tc: 0, bottom, ttl }
    }

    /// Parses one LSE from the first four bytes of `buf`.
    pub fn parse(buf: &[u8]) -> WireResult<Lse> {
        if buf.len() < LSE_LEN {
            return Err(WireError::Truncated);
        }
        let word = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
        Ok(Lse {
            label: Label(word >> 12),
            tc: ((word >> 9) & 0x7) as u8,
            bottom: (word >> 8) & 0x1 == 1,
            ttl: (word & 0xff) as u8,
        })
    }

    /// Emits this LSE into the first four bytes of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> WireResult<()> {
        if buf.len() < LSE_LEN {
            return Err(WireError::Truncated);
        }
        if self.tc > 0x7 {
            return Err(WireError::Malformed);
        }
        let word = (self.label.value() << 12)
            | (u32::from(self.tc) << 9)
            | (u32::from(self.bottom) << 8)
            | u32::from(self.ttl);
        buf[..LSE_LEN].copy_from_slice(&word.to_be_bytes());
        Ok(())
    }

    /// Returns the 4-byte wire encoding. Fails like [`Lse::emit`]
    /// when the traffic-class field exceeds its 3 bits.
    pub fn to_bytes(&self) -> WireResult<[u8; LSE_LEN]> {
        let mut buf = [0u8; LSE_LEN];
        self.emit(&mut buf)?;
        Ok(buf)
    }
}

impl fmt::Display for Lse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}{}[ttl={}]",
            self.label,
            self.tc,
            if self.bottom { "*" } else { "" },
            self.ttl
        )
    }
}

/// An ordered MPLS label stack; index 0 is the top (active) entry.
///
/// Invariant maintained by every mutator: the bottom-of-stack bit is
/// set on exactly the last entry (and the stack may be empty).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LabelStack {
    entries: Vec<Lse>,
}

impl LabelStack {
    /// Creates an empty stack.
    pub fn new() -> LabelStack {
        LabelStack::default()
    }

    /// Builds a stack from top-to-bottom labels, all with the given TTL.
    ///
    /// Bottom-of-stack bits are fixed up automatically.
    pub fn from_labels(labels: &[Label], ttl: u8) -> LabelStack {
        let mut stack = LabelStack::new();
        for (i, &label) in labels.iter().enumerate() {
            stack.entries.push(Lse { label, tc: 0, bottom: i + 1 == labels.len(), ttl });
        }
        stack
    }

    /// Rebuilds a stack from previously captured entries, verbatim —
    /// TC, TTL, and bottom-of-stack bits are taken as given.
    ///
    /// The caller is responsible for the bottom-bit invariant; the
    /// intended use is lossless materialization of entries that came
    /// out of [`LabelStack::entries`] (e.g. from a columnar arena), so
    /// a round trip reproduces the original stack bit for bit.
    pub fn from_entries(entries: Vec<Lse>) -> LabelStack {
        LabelStack { entries }
    }

    /// Number of entries in the stack.
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Whether the stack has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The top (active) entry, if any.
    pub fn top(&self) -> Option<&Lse> {
        self.entries.first()
    }

    /// Mutable access to the top entry, if any.
    pub fn top_mut(&mut self) -> Option<&mut Lse> {
        self.entries.first_mut()
    }

    /// The bottom entry, if any.
    pub fn bottom(&self) -> Option<&Lse> {
        self.entries.last()
    }

    /// All entries from top to bottom.
    pub fn entries(&self) -> &[Lse] {
        &self.entries
    }

    /// Pushes a new entry on top of the stack (MPLS PUSH).
    pub fn push(&mut self, label: Label, ttl: u8) {
        let bottom = self.entries.is_empty();
        self.entries.insert(0, Lse { label, tc: 0, bottom, ttl });
    }

    /// Pops the top entry (MPLS POP), returning it.
    pub fn pop(&mut self) -> Option<Lse> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries.remove(0))
        }
    }

    /// Swaps the top label in place (MPLS SWAP), preserving TTL/TC.
    ///
    /// Returns the outgoing (previous) label, or `None` on an empty
    /// stack.
    pub fn swap(&mut self, new_label: Label) -> Option<Label> {
        let top = self.entries.first_mut()?;
        let old = top.label;
        top.label = new_label;
        Some(old)
    }

    /// Decrements the TTL of the top entry.
    ///
    /// Returns the new TTL, or `None` on an empty stack. A result of 0
    /// means the packet must be dropped and ICMP time-exceeded emitted.
    pub fn decrement_ttl(&mut self) -> Option<u8> {
        let top = self.entries.first_mut()?;
        top.ttl = top.ttl.saturating_sub(1);
        Some(top.ttl)
    }

    /// Parses a full stack: entries until (and including) the first one
    /// with the bottom-of-stack bit set.
    pub fn parse(buf: &[u8]) -> WireResult<LabelStack> {
        let mut entries = Vec::new();
        let mut offset = 0;
        loop {
            let lse = Lse::parse(&buf[offset..])?;
            offset += LSE_LEN;
            let bottom = lse.bottom;
            entries.push(lse);
            if bottom {
                return Ok(LabelStack { entries });
            }
            if offset >= buf.len() {
                return Err(WireError::Truncated);
            }
        }
    }

    /// Total wire length in bytes.
    pub fn wire_len(&self) -> usize {
        self.entries.len() * LSE_LEN
    }

    /// Emits the stack to `buf`, fixing bottom-of-stack bits so that
    /// only the final entry carries the flag.
    pub fn emit(&self, buf: &mut [u8]) -> WireResult<()> {
        if buf.len() < self.wire_len() {
            return Err(WireError::Truncated);
        }
        for (i, lse) in self.entries.iter().enumerate() {
            let fixed = Lse { bottom: i + 1 == self.entries.len(), ..*lse };
            fixed.emit(&mut buf[i * LSE_LEN..])?;
        }
        Ok(())
    }

    /// Returns the wire encoding as an owned vector. Fails like
    /// [`LabelStack::emit`] when an entry cannot be encoded.
    pub fn to_bytes(&self) -> WireResult<Vec<u8>> {
        let mut buf = vec![0u8; self.wire_len()];
        self.emit(&mut buf)?;
        Ok(buf)
    }
}

impl fmt::Display for LabelStack {
    /// Formats the stack as `[top|…|bottom]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, lse) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, "|")?;
            }
            write!(f, "{}", lse.label)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn label_bounds() {
        assert!(Label::new(MAX_LABEL).is_ok());
        assert_eq!(Label::new(MAX_LABEL + 1), Err(WireError::Malformed));
        assert_eq!(Label::new_truncated(MAX_LABEL + 1).value(), 0);
    }

    #[test]
    fn special_purpose_labels() {
        assert!(Label::IMPLICIT_NULL.is_special_purpose());
        assert!(Label::new(15).unwrap().is_special_purpose());
        assert!(!Label::new(16).unwrap().is_special_purpose());
        assert!(Label::new(255).unwrap().is_reserved());
        assert!(!Label::new(256).unwrap().is_reserved());
    }

    #[test]
    fn suffix_matching_follows_paper_example() {
        // §4.1 footnote: 16,005 → 13,005 are considered a sequence.
        let a = Label::new(16_005).unwrap();
        let b = Label::new(13_005).unwrap();
        assert!(a.suffix_matches(b));
        // Identical labels are not a *suffix* match (they are an exact one).
        assert!(!a.suffix_matches(a));
        // Different suffixes never match.
        assert!(!a.suffix_matches(Label::new(16_006).unwrap()));
    }

    #[test]
    fn lse_round_trip() {
        let lse = Lse { label: Label::new(16_005).unwrap(), tc: 5, bottom: true, ttl: 253 };
        let bytes = lse.to_bytes().unwrap();
        assert_eq!(Lse::parse(&bytes).unwrap(), lse);
    }

    #[test]
    fn lse_wire_layout_matches_rfc3032() {
        // label=1 (occupies top 20 bits), tc=0, s=1, ttl=255
        let lse = Lse { label: Label::ROUTER_ALERT, tc: 0, bottom: true, ttl: 255 };
        assert_eq!(lse.to_bytes().unwrap(), [0x00, 0x00, 0x11, 0xff]);
    }

    #[test]
    fn lse_parse_truncated() {
        assert_eq!(Lse::parse(&[0, 0, 0]), Err(WireError::Truncated));
    }

    #[test]
    fn lse_emit_rejects_bad_tc() {
        let lse = Lse { label: Label::GAL, tc: 8, bottom: false, ttl: 0 };
        let mut buf = [0u8; 4];
        assert_eq!(lse.emit(&mut buf), Err(WireError::Malformed));
    }

    #[test]
    fn stack_push_pop_swap() {
        let mut stack = LabelStack::new();
        stack.push(Label::new(108).unwrap(), 255);
        stack.push(Label::new(3_001).unwrap(), 255);
        stack.push(Label::new(104).unwrap(), 255);
        assert_eq!(stack.depth(), 3);
        assert_eq!(stack.top().unwrap().label.value(), 104);
        assert!(stack.bottom().unwrap().bottom);
        assert!(!stack.top().unwrap().bottom);

        assert_eq!(stack.swap(Label::new(204).unwrap()).unwrap().value(), 104);
        assert_eq!(stack.top().unwrap().label.value(), 204);

        assert_eq!(stack.pop().unwrap().label.value(), 204);
        assert_eq!(stack.pop().unwrap().label.value(), 3_001);
        assert_eq!(stack.top().unwrap().label.value(), 108);
        assert!(stack.top().unwrap().bottom);
        assert_eq!(stack.pop().unwrap().label.value(), 108);
        assert!(stack.pop().is_none());
        assert!(stack.swap(Label::GAL).is_none());
    }

    #[test]
    fn stack_ttl_decrement() {
        let mut stack = LabelStack::from_labels(&[Label::new(16_000).unwrap()], 2);
        assert_eq!(stack.decrement_ttl(), Some(1));
        assert_eq!(stack.decrement_ttl(), Some(0));
        assert_eq!(stack.decrement_ttl(), Some(0), "TTL saturates at zero");
        assert_eq!(LabelStack::new().decrement_ttl(), None);
    }

    #[test]
    fn stack_parse_stops_at_bottom() {
        let stack = LabelStack::from_labels(
            &[Label::new(20_000).unwrap(), Label::new(37_000).unwrap()],
            255,
        );
        let mut bytes = stack.to_bytes().unwrap();
        // Append garbage after the bottom entry; parsing must ignore it.
        bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
        let parsed = LabelStack::parse(&bytes).unwrap();
        assert_eq!(parsed, stack);
    }

    #[test]
    fn stack_parse_missing_bottom_is_truncated() {
        let lse = Lse { label: Label::GAL, tc: 0, bottom: false, ttl: 9 };
        assert_eq!(LabelStack::parse(&lse.to_bytes().unwrap()), Err(WireError::Truncated));
    }

    #[test]
    fn empty_stack_emits_nothing() {
        let stack = LabelStack::new();
        assert_eq!(stack.wire_len(), 0);
        assert!(stack.to_bytes().unwrap().is_empty());
    }

    #[test]
    fn display_formats() {
        let stack =
            LabelStack::from_labels(&[Label::new(104).unwrap(), Label::new(3_001).unwrap()], 255);
        assert_eq!(format!("{stack}"), "[104|3001]");
        assert_eq!(format!("{}", stack.entries()[1]), "3001/0*[ttl=255]");
    }

    proptest! {
        #[test]
        fn prop_lse_round_trip(label in 0u32..=MAX_LABEL, tc in 0u8..8, bottom: bool, ttl: u8) {
            let lse = Lse { label: Label::new(label).unwrap(), tc, bottom, ttl };
            prop_assert_eq!(Lse::parse(&lse.to_bytes().unwrap()).unwrap(), lse);
        }

        #[test]
        fn prop_stack_round_trip(labels in prop::collection::vec(0u32..=MAX_LABEL, 1..10), ttl: u8) {
            let labels: Vec<Label> = labels.into_iter().map(|l| Label::new(l).unwrap()).collect();
            let stack = LabelStack::from_labels(&labels, ttl);
            let parsed = LabelStack::parse(&stack.to_bytes().unwrap()).unwrap();
            prop_assert_eq!(parsed, stack);
        }

        #[test]
        fn prop_bottom_bit_only_on_last(labels in prop::collection::vec(0u32..=MAX_LABEL, 1..10)) {
            let labels: Vec<Label> = labels.into_iter().map(|l| Label::new(l).unwrap()).collect();
            let stack = LabelStack::from_labels(&labels, 64);
            for (i, lse) in stack.entries().iter().enumerate() {
                prop_assert_eq!(lse.bottom, i + 1 == stack.depth());
            }
        }

        #[test]
        fn prop_push_then_pop_is_identity(base in prop::collection::vec(0u32..=MAX_LABEL, 0..6), extra in 0u32..=MAX_LABEL) {
            let labels: Vec<Label> = base.into_iter().map(|l| Label::new(l).unwrap()).collect();
            let mut stack = LabelStack::from_labels(&labels, 255);
            let before = stack.clone();
            stack.push(Label::new(extra).unwrap(), 255);
            let popped = stack.pop().unwrap();
            prop_assert_eq!(popped.label.value(), extra);
            prop_assert_eq!(stack, before);
        }

        #[test]
        fn prop_suffix_match_symmetric(a in 0u32..=MAX_LABEL, b in 0u32..=MAX_LABEL) {
            let (a, b) = (Label::new(a).unwrap(), Label::new(b).unwrap());
            prop_assert_eq!(a.suffix_matches(b), b.suffix_matches(a));
        }
    }
}
