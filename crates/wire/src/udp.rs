//! The UDP header (RFC 768) used by traceroute probes.
//!
//! Paris traceroute keeps the UDP source/destination ports constant for
//! a given flow so that per-flow load balancers pin the probe path; the
//! probe sequence number is carried in the UDP *checksum* by adjusting
//! payload bytes. [`UdpRepr::emit_with_target_checksum`] implements
//! exactly that trick.

use crate::checksum;
use crate::error::{WireError, WireResult};
use std::net::Ipv4Addr;

/// UDP header length in bytes.
pub const HEADER_LEN: usize = 8;

/// A read-only view over a UDP datagram buffer.
#[derive(Debug, Clone)]
pub struct UdpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpPacket<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> UdpPacket<T> {
        UdpPacket { buffer }
    }

    /// Wraps a buffer, validating the length field.
    pub fn new_checked(buffer: T) -> WireResult<UdpPacket<T>> {
        let packet = UdpPacket::new_unchecked(buffer);
        let data = packet.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let len = usize::from(packet.len());
        if len < HEADER_LEN || data.len() < len {
            return Err(WireError::Truncated);
        }
        Ok(packet)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[0], d[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[2], d[3]])
    }

    /// The Length field (header + payload).
    pub fn len(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[4], d[5]])
    }

    /// Whether the datagram carries no payload.
    pub fn is_empty(&self) -> bool {
        self.len() as usize <= HEADER_LEN
    }

    /// The stored checksum.
    pub fn checksum(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[6], d[7]])
    }

    /// The payload bytes.
    pub fn payload(&self) -> &[u8] {
        let d = self.buffer.as_ref();
        &d[HEADER_LEN..usize::from(self.len()).min(d.len())]
    }

    /// Verifies the checksum against the IPv4 pseudo header.
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        let d = self.buffer.as_ref();
        let len = usize::from(self.len());
        let sum = checksum::pseudo_header_sum(src.octets(), dst.octets(), 17, self.len())
            + checksum::raw_sum(&d[..len]);
        checksum::fold(sum) == 0xffff
    }
}

/// An owned UDP header representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl UdpRepr {
    /// Parses ports from a checked view.
    pub fn parse<T: AsRef<[u8]>>(packet: &UdpPacket<T>) -> UdpRepr {
        UdpRepr { src_port: packet.src_port(), dst_port: packet.dst_port() }
    }

    /// Emits a header plus `payload` into `buf`, computing the real
    /// checksum over the pseudo header.
    pub fn emit(
        &self,
        buf: &mut [u8],
        payload: &[u8],
        src: Ipv4Addr,
        dst: Ipv4Addr,
    ) -> WireResult<()> {
        let total = HEADER_LEN + payload.len();
        if buf.len() < total {
            return Err(WireError::Truncated);
        }
        let len = u16::try_from(total).map_err(|_| WireError::Malformed)?;
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..6].copy_from_slice(&len.to_be_bytes());
        buf[6..8].copy_from_slice(&[0, 0]);
        buf[HEADER_LEN..total].copy_from_slice(payload);
        let sum = checksum::pseudo_header_sum(src.octets(), dst.octets(), 17, len)
            + checksum::raw_sum(&buf[..total]);
        let mut c = !checksum::fold(sum);
        // RFC 768: a computed zero checksum is transmitted as all ones.
        if c == 0 {
            c = 0xffff;
        }
        buf[6..8].copy_from_slice(&c.to_be_bytes());
        Ok(())
    }

    /// Emits a header with a two-byte payload chosen so the UDP
    /// checksum equals `target` — the Paris traceroute trick for
    /// encoding a probe identifier without perturbing the flow tuple.
    ///
    /// `target` must be non-zero (zero means "no checksum" in UDP).
    pub fn emit_with_target_checksum(
        &self,
        buf: &mut [u8],
        target: u16,
        src: Ipv4Addr,
        dst: Ipv4Addr,
    ) -> WireResult<()> {
        if target == 0 {
            return Err(WireError::Malformed);
        }
        let total = HEADER_LEN + 2;
        if buf.len() < total {
            return Err(WireError::Truncated);
        }
        let len = total as u16;
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..6].copy_from_slice(&len.to_be_bytes());
        buf[6..8].copy_from_slice(&target.to_be_bytes());
        // Solve for the payload halfword P such that the one's
        // complement sum over (pseudo header + header-with-target + P)
        // equals 0xffff, i.e. the stored `target` verifies.
        let partial = checksum::pseudo_header_sum(src.octets(), dst.octets(), 17, len)
            + checksum::raw_sum(&buf[..HEADER_LEN]);
        let folded = checksum::fold(partial);
        let payload = !folded; // one's complement difference to reach 0xffff
        buf[HEADER_LEN..total].copy_from_slice(&payload.to_be_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 1, 2, 3);
    const DST: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 9);

    #[test]
    fn emit_verify_round_trip() {
        let repr = UdpRepr { src_port: 33434, dst_port: 33435 };
        let payload = [1, 2, 3, 4, 5];
        let mut buf = vec![0u8; HEADER_LEN + payload.len()];
        repr.emit(&mut buf, &payload, SRC, DST).unwrap();
        let packet = UdpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(UdpRepr::parse(&packet), repr);
        assert_eq!(packet.payload(), &payload);
        assert!(packet.verify_checksum(SRC, DST));
        // Note: swapping src/dst does NOT break the checksum (the
        // pseudo-header sum is commutative); a different address does.
        assert!(!packet.verify_checksum(Ipv4Addr::new(10, 1, 2, 4), DST));
    }

    #[test]
    fn checked_rejects_short() {
        assert_eq!(UdpPacket::new_checked(&[0u8; 4][..]).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn checked_rejects_len_below_header() {
        let mut buf = [0u8; 8];
        buf[5] = 4; // length 4 < 8
        assert_eq!(UdpPacket::new_checked(&buf[..]).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn target_checksum_is_honoured() {
        let repr = UdpRepr { src_port: 33434, dst_port: 33434 };
        for target in [1u16, 0x1234, 0xfffe, 0xffff] {
            let mut buf = vec![0u8; HEADER_LEN + 2];
            repr.emit_with_target_checksum(&mut buf, target, SRC, DST).unwrap();
            let packet = UdpPacket::new_checked(&buf[..]).unwrap();
            assert_eq!(packet.checksum(), target);
            assert!(packet.verify_checksum(SRC, DST), "target {target:#x} must verify");
        }
    }

    #[test]
    fn target_checksum_rejects_zero() {
        let repr = UdpRepr { src_port: 1, dst_port: 2 };
        let mut buf = vec![0u8; HEADER_LEN + 2];
        assert_eq!(
            repr.emit_with_target_checksum(&mut buf, 0, SRC, DST).unwrap_err(),
            WireError::Malformed
        );
    }

    proptest! {
        #[test]
        fn prop_emit_always_verifies(sport: u16, dport: u16,
                                     payload in prop::collection::vec(any::<u8>(), 0..32),
                                     src: [u8; 4], dst: [u8; 4]) {
            let repr = UdpRepr { src_port: sport, dst_port: dport };
            let (src, dst) = (Ipv4Addr::from(src), Ipv4Addr::from(dst));
            let mut buf = vec![0u8; HEADER_LEN + payload.len()];
            repr.emit(&mut buf, &payload, src, dst).unwrap();
            let packet = UdpPacket::new_checked(&buf[..]).unwrap();
            prop_assert!(packet.verify_checksum(src, dst));
        }

        #[test]
        fn prop_target_checksum(target in 1u16..=u16::MAX, sport: u16, dport: u16,
                                src: [u8; 4], dst: [u8; 4]) {
            let repr = UdpRepr { src_port: sport, dst_port: dport };
            let (src, dst) = (Ipv4Addr::from(src), Ipv4Addr::from(dst));
            let mut buf = vec![0u8; HEADER_LEN + 2];
            repr.emit_with_target_checksum(&mut buf, target, src, dst).unwrap();
            let packet = UdpPacket::new_checked(&buf[..]).unwrap();
            prop_assert_eq!(packet.checksum(), target);
            prop_assert!(packet.verify_checksum(src, dst));
        }
    }
}
