//! The Internet checksum (RFC 1071) shared by IPv4, UDP, and ICMP.

/// Computes the one's-complement Internet checksum over `data`.
///
/// The returned value is already complemented, i.e. ready to be stored
/// in a header checksum field. A buffer whose stored checksum is valid
/// sums (via [`raw_sum`]) to `0xffff`.
pub fn checksum(data: &[u8]) -> u16 {
    !fold(raw_sum(data))
}

/// Computes the unfolded 32-bit one's-complement sum of `data`.
///
/// Odd trailing bytes are padded with a zero byte, as the RFC requires.
pub fn raw_sum(data: &[u8]) -> u32 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

/// Folds a 32-bit one's-complement accumulator down to 16 bits.
pub fn fold(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// Computes the UDP/TCP pseudo-header sum for an IPv4 flow.
///
/// `len` is the length of the transport header plus payload in bytes.
pub fn pseudo_header_sum(src: [u8; 4], dst: [u8; 4], protocol: u8, len: u16) -> u32 {
    raw_sum(&src) + raw_sum(&dst) + u32::from(protocol) + u32::from(len)
}

/// Verifies that `data`, containing an embedded checksum field, sums to
/// the all-ones value required by RFC 1071.
pub fn verify(data: &[u8]) -> bool {
    fold(raw_sum(data)) == 0xffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_of_zeroes_is_all_ones() {
        assert_eq!(checksum(&[0u8; 8]), 0xffff);
    }

    #[test]
    fn rfc1071_worked_example() {
        // The classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(fold(raw_sum(&data)), 0xddf2);
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(raw_sum(&[0xab]), 0xab00);
    }

    #[test]
    fn verify_accepts_valid_buffer() {
        let mut buf = [
            0x45u8, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x00, 0x40, 0x11, 0, 0, 10, 0, 0, 1, 10, 0,
            0, 2,
        ];
        let c = checksum(&buf);
        buf[10..12].copy_from_slice(&c.to_be_bytes());
        assert!(verify(&buf));
        buf[0] ^= 0x01;
        assert!(!verify(&buf));
    }

    #[test]
    fn pseudo_header_matches_manual_sum() {
        let s = pseudo_header_sum([1, 2, 3, 4], [5, 6, 7, 8], 17, 20);
        let manual = raw_sum(&[1, 2, 3, 4, 5, 6, 7, 8, 0, 17, 0, 20]);
        assert_eq!(s, manual);
    }
}
