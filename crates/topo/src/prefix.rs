//! IPv4 prefixes and a binary-trie longest-prefix-match map.
//!
//! [`PrefixMap`] backs every routing decision in the reproduction:
//! router FIBs, the synthetic BGP view Anaximander consumes, and the
//! prefix-to-AS ownership table bdrmapIT-style annotation relies on.

use core::fmt;
use core::str::FromStr;
use std::net::Ipv4Addr;

/// An IPv4 prefix in CIDR form, normalized so host bits are zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix {
    bits: u32,
    len: u8,
}

impl Prefix {
    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix { bits: 0, len: 0 };

    /// Creates a prefix, masking out host bits.
    ///
    /// Returns `None` if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Option<Prefix> {
        if len > 32 {
            return None;
        }
        let bits = u32::from(addr) & mask(len);
        Some(Prefix { bits, len })
    }

    /// A /32 host prefix.
    pub fn host(addr: Ipv4Addr) -> Prefix {
        Prefix { bits: u32::from(addr), len: 32 }
    }

    /// The network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits)
    }

    /// The prefix length.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length default route.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of addresses covered (saturating at `u32::MAX` for /0).
    pub fn size(&self) -> u32 {
        if self.len == 0 {
            u32::MAX
        } else {
            1u32 << (32 - self.len)
        }
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & mask(self.len) == self.bits
    }

    /// Whether `other` is fully covered by this prefix.
    pub fn covers(&self, other: &Prefix) -> bool {
        other.len >= self.len && (other.bits & mask(self.len)) == self.bits
    }

    /// The `i`-th address inside the prefix (wrapping within the
    /// prefix), handy for deterministic target generation.
    pub fn nth(&self, i: u32) -> Ipv4Addr {
        let span = self.size();
        Ipv4Addr::from(self.bits.wrapping_add(i % span))
    }
}

fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

/// Errors parsing a `a.b.c.d/len` string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsePrefixError;

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix syntax (expected a.b.c.d/len)")
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Prefix {
    type Err = ParsePrefixError;
    fn from_str(s: &str) -> Result<Prefix, ParsePrefixError> {
        let (addr, len) = s.split_once('/').ok_or(ParsePrefixError)?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| ParsePrefixError)?;
        let len: u8 = len.parse().map_err(|_| ParsePrefixError)?;
        Prefix::new(addr, len).ok_or(ParsePrefixError)
    }
}

/// A longest-prefix-match map from [`Prefix`] to `T`, implemented as a
/// binary trie over address bits.
///
/// ```
/// use arest_topo::prefix::{Prefix, PrefixMap};
/// use std::net::Ipv4Addr;
///
/// let mut fib: PrefixMap<&str> = PrefixMap::new();
/// fib.insert("10.0.0.0/8".parse().unwrap(), "coarse");
/// fib.insert("10.1.0.0/16".parse().unwrap(), "fine");
/// let (prefix, route) = fib.lookup(Ipv4Addr::new(10, 1, 2, 3)).unwrap();
/// assert_eq!(*route, "fine");
/// assert_eq!(prefix.len(), 16);
/// ```
///
/// Lookups walk at most 32 nodes; inserts allocate one node per
/// distinct bit-path. This is the FIB structure every simulated router
/// uses, so it favours lookup simplicity over memory compaction.
#[derive(Debug, Clone)]
pub struct PrefixMap<T> {
    nodes: Vec<Node<T>>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<T> {
    children: [Option<u32>; 2],
    value: Option<(Prefix, T)>,
}

impl<T> Default for PrefixMap<T> {
    fn default() -> PrefixMap<T> {
        PrefixMap { nodes: vec![Node { children: [None, None], value: None }], len: 0 }
    }
}

impl<T> PrefixMap<T> {
    /// Creates an empty map.
    pub fn new() -> PrefixMap<T> {
        PrefixMap::default()
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` under `prefix`, returning the previous value if
    /// the exact prefix was already present.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let mut node = 0usize;
        let bits = u32::from(prefix.network());
        for depth in 0..prefix.len() {
            let bit = ((bits >> (31 - depth)) & 1) as usize;
            node = match self.nodes[node].children[bit] {
                Some(child) => child as usize,
                None => {
                    let child = self.nodes.len() as u32;
                    self.nodes.push(Node { children: [None, None], value: None });
                    self.nodes[node].children[bit] = Some(child);
                    child as usize
                }
            };
        }
        let old = self.nodes[node].value.replace((prefix, value));
        match old {
            Some((_, v)) => Some(v),
            None => {
                self.len += 1;
                None
            }
        }
    }

    /// Longest-prefix-match lookup: the most specific entry covering
    /// `addr`, with the matched prefix.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<(&Prefix, &T)> {
        let bits = u32::from(addr);
        let mut node = 0usize;
        let mut best = self.nodes[0].value.as_ref();
        for depth in 0..32 {
            let bit = ((bits >> (31 - depth)) & 1) as usize;
            match self.nodes[node].children[bit] {
                Some(child) => {
                    node = child as usize;
                    if let Some(entry) = self.nodes[node].value.as_ref() {
                        best = Some(entry);
                    }
                }
                None => break,
            }
        }
        best.map(|(p, v)| (p, v))
    }

    /// Exact-match lookup for a stored prefix.
    pub fn get(&self, prefix: &Prefix) -> Option<&T> {
        let bits = u32::from(prefix.network());
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let bit = ((bits >> (31 - depth)) & 1) as usize;
            node = self.nodes[node].children[bit]? as usize;
        }
        match &self.nodes[node].value {
            Some((p, v)) if p == prefix => Some(v),
            _ => None,
        }
    }

    /// Iterates over all stored `(prefix, value)` pairs in trie order.
    pub fn iter(&self) -> impl Iterator<Item = (&Prefix, &T)> {
        self.nodes.iter().filter_map(|n| n.value.as_ref().map(|(p, v)| (p, v)))
    }
}

impl<T> FromIterator<(Prefix, T)> for PrefixMap<T> {
    fn from_iter<I: IntoIterator<Item = (Prefix, T)>>(iter: I) -> PrefixMap<T> {
        let mut map = PrefixMap::new();
        for (p, v) in iter {
            map.insert(p, v);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn prefix_normalizes_host_bits() {
        let prefix = Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 16).unwrap();
        assert_eq!(prefix.network(), Ipv4Addr::new(10, 1, 0, 0));
        assert_eq!(prefix.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn prefix_rejects_bad_len() {
        assert!(Prefix::new(Ipv4Addr::UNSPECIFIED, 33).is_none());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0.0/8".parse::<Prefix>().is_err());
        assert!("10.0.0.0".parse::<Prefix>().is_err());
    }

    #[test]
    fn contains_and_covers() {
        let net = p("192.0.2.0/24");
        assert!(net.contains(Ipv4Addr::new(192, 0, 2, 200)));
        assert!(!net.contains(Ipv4Addr::new(192, 0, 3, 1)));
        assert!(net.covers(&p("192.0.2.128/25")));
        assert!(!net.covers(&p("192.0.0.0/16")));
        assert!(Prefix::DEFAULT.covers(&net));
        assert!(Prefix::DEFAULT.contains(Ipv4Addr::new(8, 8, 8, 8)));
    }

    #[test]
    fn nth_wraps_within_prefix() {
        let net = p("10.0.0.0/30");
        assert_eq!(net.nth(0), Ipv4Addr::new(10, 0, 0, 0));
        assert_eq!(net.nth(3), Ipv4Addr::new(10, 0, 0, 3));
        assert_eq!(net.nth(4), Ipv4Addr::new(10, 0, 0, 0));
    }

    #[test]
    fn host_prefix() {
        let h = Prefix::host(Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(h.len(), 32);
        assert_eq!(h.size(), 1);
        assert!(h.contains(Ipv4Addr::new(1, 2, 3, 4)));
        assert!(!h.contains(Ipv4Addr::new(1, 2, 3, 5)));
    }

    #[test]
    fn lpm_prefers_most_specific() {
        let mut map = PrefixMap::new();
        map.insert(Prefix::DEFAULT, "default");
        map.insert(p("10.0.0.0/8"), "eight");
        map.insert(p("10.1.0.0/16"), "sixteen");
        map.insert(p("10.1.2.0/24"), "twentyfour");

        let q = |a: [u8; 4]| map.lookup(Ipv4Addr::from(a)).map(|(_, v)| *v);
        assert_eq!(q([10, 1, 2, 3]), Some("twentyfour"));
        assert_eq!(q([10, 1, 9, 9]), Some("sixteen"));
        assert_eq!(q([10, 200, 0, 1]), Some("eight"));
        assert_eq!(q([192, 0, 2, 1]), Some("default"));
    }

    #[test]
    fn lpm_without_default_can_miss() {
        let mut map = PrefixMap::new();
        map.insert(p("172.16.0.0/12"), ());
        assert!(map.lookup(Ipv4Addr::new(8, 8, 8, 8)).is_none());
    }

    #[test]
    fn insert_replaces_exact_prefix() {
        let mut map = PrefixMap::new();
        assert_eq!(map.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(map.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(map.len(), 1);
        assert_eq!(map.get(&p("10.0.0.0/8")), Some(&2));
        assert_eq!(map.get(&p("10.0.0.0/9")), None);
    }

    #[test]
    fn iter_yields_all_entries() {
        let entries = vec![(p("10.0.0.0/8"), 1), (p("10.1.0.0/16"), 2), (p("0.0.0.0/0"), 3)];
        let map: PrefixMap<i32> = entries.iter().copied().collect();
        assert_eq!(map.len(), 3);
        let mut got: Vec<_> = map.iter().map(|(p, v)| (*p, *v)).collect();
        got.sort();
        let mut want = entries;
        want.sort();
        assert_eq!(got, want);
    }

    proptest! {
        #[test]
        fn prop_lookup_matches_linear_scan(
            entries in prop::collection::vec((any::<u32>(), 0u8..=32), 1..40),
            queries in prop::collection::vec(any::<u32>(), 1..40),
        ) {
            let mut map = PrefixMap::new();
            let mut list: Vec<(Prefix, usize)> = Vec::new();
            for (i, (bits, len)) in entries.iter().enumerate() {
                let prefix = Prefix::new(Ipv4Addr::from(*bits), *len).unwrap();
                map.insert(prefix, i);
                list.retain(|(p, _)| p != &prefix);
                list.push((prefix, i));
            }
            for q in queries {
                let addr = Ipv4Addr::from(q);
                let expected = list
                    .iter()
                    .filter(|(p, _)| p.contains(addr))
                    .max_by_key(|(p, _)| p.len())
                    .map(|(_, v)| *v);
                let got = map.lookup(addr).map(|(_, v)| *v);
                prop_assert_eq!(got, expected);
            }
        }

        #[test]
        fn prop_prefix_parse_round_trip(bits: u32, len in 0u8..=32) {
            let prefix = Prefix::new(Ipv4Addr::from(bits), len).unwrap();
            let parsed: Prefix = prefix.to_string().parse().unwrap();
            prop_assert_eq!(parsed, prefix);
        }

        #[test]
        fn prop_contains_iff_host_covered(bits: u32, len in 0u8..=32, addr: u32) {
            let prefix = Prefix::new(Ipv4Addr::from(bits), len).unwrap();
            let addr = Ipv4Addr::from(addr);
            prop_assert_eq!(prefix.contains(addr), prefix.covers(&Prefix::host(addr)));
        }
    }
}
