//! Typed identifiers for topology entities.
//!
//! Plain `u32` newtypes with `Display` impls; using distinct types
//! keeps router/interface/AS indices from being mixed up at compile
//! time, which matters in code that juggles all three (bdrmapIT-style
//! annotation, alias resolution, the simulator's forwarding loop).

use core::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index value.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(value: u32) -> $name {
                $name(value)
            }
        }
    };
}

id_type!(
    /// Identifies a router within a [`crate::Topology`].
    RouterId,
    "R"
);

id_type!(
    /// Identifies an interface within a [`crate::Topology`].
    IfaceId,
    "if"
);

id_type!(
    /// Identifies a point-to-point link within a [`crate::Topology`].
    LinkId,
    "L"
);

/// An autonomous system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AsNumber(pub u32);

impl AsNumber {
    /// The reserved ASN used for vantage-point hosts that do not
    /// belong to any modelled AS.
    pub const MEASUREMENT: AsNumber = AsNumber(64_512);
}

impl fmt::Display for AsNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for AsNumber {
    fn from(value: u32) -> AsNumber {
        AsNumber(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(RouterId(7).to_string(), "R7");
        assert_eq!(IfaceId(3).to_string(), "if3");
        assert_eq!(LinkId(1).to_string(), "L1");
        assert_eq!(AsNumber(293).to_string(), "AS293");
    }

    #[test]
    fn ids_are_ordered_and_indexable() {
        assert!(RouterId(1) < RouterId(2));
        assert_eq!(RouterId(5).index(), 5);
        assert_eq!(IfaceId::from(9u32), IfaceId(9));
    }
}
