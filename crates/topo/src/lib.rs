//! # arest-topo
//!
//! Router-level topology model shared by the whole AReST reproduction.
//!
//! The crate deliberately stays below the control planes: it knows
//! about routers, interfaces, point-to-point links, autonomous
//! systems, IGP costs and shortest paths — but nothing about MPLS or
//! Segment Routing, which live in `arest-mpls` and `arest-sr`.
//!
//! * [`ids`] — small typed identifiers for routers, interfaces and ASes.
//! * [`vendor`] — the hardware vendor vocabulary used by fingerprinting
//!   and by the SR label-block tables.
//! * [`prefix`] — IPv4 prefixes and a binary-trie longest-prefix-match
//!   map used for FIBs and AS ownership.
//! * [`graph`] — the topology itself with its builder API.
//! * [`spf`] — deterministic Dijkstra shortest-path-first used as the
//!   IGP (IS-IS/OSPF stand-in).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod ids;
pub mod prefix;
pub mod spf;
pub mod vendor;

pub use graph::{Interface, Link, Router, Topology};
pub use ids::{AsNumber, IfaceId, LinkId, RouterId};
pub use prefix::{Prefix, PrefixMap};
pub use spf::SpfTree;
pub use vendor::Vendor;
