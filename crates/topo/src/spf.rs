//! Deterministic Dijkstra shortest-path-first — the IGP stand-in.
//!
//! Both IS-IS and OSPF reduce, for this reproduction's purposes, to
//! "every router knows the shortest path to every other router in its
//! domain". [`SpfTree`] computes that from one source; [`DomainSpf`]
//! caches a tree per router so the data plane can ask "next hop from
//! *here* toward X" in O(1).
//!
//! Ties are broken deterministically (lowest predecessor router id)
//! for the *primary* next hop, and all equal-cost first hops are
//! retained ([`SpfTree::next_hops`]) so the data plane can do ECMP:
//! per-flow hashing over that set is exactly the load-balancing
//! behaviour Paris traceroute's flow-stable probing exists to tame.

use crate::graph::Topology;
use crate::ids::{AsNumber, IfaceId, RouterId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Cap on retained equal-cost first hops per destination (real
/// routers bound their ECMP fan-out similarly).
const MAX_ECMP: usize = 4;

/// The shortest-path tree rooted at one router.
#[derive(Debug, Clone)]
pub struct SpfTree {
    /// The root of the tree.
    pub source: RouterId,
    dist: HashMap<RouterId, u32>,
    /// For each reachable router: every equal-cost first hop from the
    /// source (egress interface + neighbour), deterministically
    /// ordered; index 0 is the primary.
    next: HashMap<RouterId, Vec<(IfaceId, RouterId)>>,
    /// Immediate predecessor on the primary shortest path.
    pred: HashMap<RouterId, RouterId>,
}

impl SpfTree {
    /// Runs Dijkstra from `source` over routers for which `in_domain`
    /// returns true. Links with `up == false` are skipped.
    pub fn compute(
        topo: &Topology,
        source: RouterId,
        in_domain: impl Fn(RouterId) -> bool,
    ) -> SpfTree {
        SpfTree::compute_avoiding(topo, source, in_domain, None)
    }

    /// Like [`SpfTree::compute`], additionally excluding one link —
    /// the post-convergence view TI-LFA repair paths are built from.
    pub fn compute_avoiding(
        topo: &Topology,
        source: RouterId,
        in_domain: impl Fn(RouterId) -> bool,
        avoid: Option<crate::ids::LinkId>,
    ) -> SpfTree {
        let mut dist: HashMap<RouterId, u32> = HashMap::new();
        let mut next: HashMap<RouterId, Vec<(IfaceId, RouterId)>> = HashMap::new();
        let mut pred: HashMap<RouterId, RouterId> = HashMap::new();
        let mut heap: BinaryHeap<Reverse<(u32, RouterId)>> = BinaryHeap::new();

        dist.insert(source, 0);
        heap.push(Reverse((0, source)));

        while let Some(Reverse((d, u))) = heap.pop() {
            if dist.get(&u).copied() != Some(d) {
                continue; // stale heap entry
            }
            for (link, local_if, _, v, cost) in topo.adjacencies(u) {
                if !in_domain(v) || Some(link) == avoid {
                    continue;
                }
                let nd = d.saturating_add(cost);
                let first_hops_via_u =
                    if u == source { vec![(local_if, v)] } else { next[&u].clone() };
                match dist.get(&v) {
                    None => {
                        dist.insert(v, nd);
                        pred.insert(v, u);
                        next.insert(v, first_hops_via_u);
                        heap.push(Reverse((nd, v)));
                    }
                    Some(&old) if nd < old => {
                        dist.insert(v, nd);
                        pred.insert(v, u);
                        next.insert(v, first_hops_via_u);
                        heap.push(Reverse((nd, v)));
                    }
                    Some(&old) if nd == old => {
                        // Equal cost: merge the first-hop sets (ECMP)
                        // and keep the primary deterministic by
                        // preferring the smaller predecessor id.
                        if pred.get(&v).is_some_and(|&p| u < p) {
                            pred.insert(v, u);
                            let mut merged = first_hops_via_u;
                            merged.extend(next[&v].iter().copied());
                            dedup_hops(&mut merged);
                            next.insert(v, merged);
                        } else {
                            let hops = next.get_mut(&v).expect("set on first visit");
                            hops.extend(first_hops_via_u);
                            dedup_hops(hops);
                        }
                    }
                    _ => {}
                }
            }
        }

        SpfTree { source, dist, next, pred }
    }

    /// IGP distance to `dst`, if reachable.
    pub fn distance(&self, dst: RouterId) -> Option<u32> {
        self.dist.get(&dst).copied()
    }

    /// The primary first hop from the source toward `dst` (control
    /// planes install this one). `None` when unreachable or
    /// `dst == source`.
    pub fn next_hop(&self, dst: RouterId) -> Option<(IfaceId, RouterId)> {
        self.next.get(&dst).and_then(|hops| hops.first().copied())
    }

    /// All equal-cost first hops toward `dst`, primary first. The data
    /// plane hashes a flow over this set (ECMP).
    pub fn next_hops(&self, dst: RouterId) -> &[(IfaceId, RouterId)] {
        self.next.get(&dst).map_or(&[], Vec::as_slice)
    }

    /// The full router path `source..=dst`, or `None` if unreachable.
    pub fn path(&self, dst: RouterId) -> Option<Vec<RouterId>> {
        if dst == self.source {
            return Some(vec![dst]);
        }
        self.dist.get(&dst)?;
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != self.source {
            cur = *self.pred.get(&cur)?;
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Routers reachable from the source (including itself).
    pub fn reachable(&self) -> impl Iterator<Item = RouterId> + '_ {
        self.dist.keys().copied()
    }
}

/// Order-preserving dedup with the ECMP fan-out cap.
fn dedup_hops(hops: &mut Vec<(IfaceId, RouterId)>) {
    let mut seen = std::collections::HashSet::new();
    hops.retain(|hop| seen.insert(*hop));
    hops.truncate(MAX_ECMP);
}

/// Per-domain all-sources SPF cache.
///
/// A "domain" is the set of routers sharing one IGP — in this
/// reproduction, one AS (plus, for SR, the subset that is SR-capable
/// is filtered at the control-plane layer, not here).
#[derive(Debug, Clone)]
pub struct DomainSpf {
    trees: HashMap<RouterId, SpfTree>,
}

impl DomainSpf {
    /// Computes an SPF tree from every router of `asn`.
    pub fn for_as(topo: &Topology, asn: AsNumber) -> DomainSpf {
        let members: Vec<RouterId> = topo.routers_in_as(asn).map(|r| r.id).collect();
        DomainSpf::for_members(topo, &members)
    }

    /// Computes an SPF tree from every router in `members`, with the
    /// domain restricted to exactly that set.
    pub fn for_members(topo: &Topology, members: &[RouterId]) -> DomainSpf {
        // SPF recomputation is the IGP-convergence cost of the control
        // plane — cold, so inline registration is fine.
        let registry = arest_obs::global();
        if registry.is_enabled() {
            registry.counter("topo.spf.domains").inc();
            registry.counter("topo.spf.trees").add(members.len() as u64);
        }
        let set: std::collections::HashSet<RouterId> = members.iter().copied().collect();
        let trees =
            members.iter().map(|&r| (r, SpfTree::compute(topo, r, |x| set.contains(&x)))).collect();
        DomainSpf { trees }
    }

    /// The SPF tree rooted at `router`, if it belongs to the domain.
    pub fn tree(&self, router: RouterId) -> Option<&SpfTree> {
        self.trees.get(&router)
    }

    /// Primary next hop from `from` toward `to` within the domain.
    pub fn next_hop(&self, from: RouterId, to: RouterId) -> Option<(IfaceId, RouterId)> {
        self.trees.get(&from)?.next_hop(to)
    }

    /// All equal-cost next hops from `from` toward `to` (ECMP set).
    pub fn next_hops(&self, from: RouterId, to: RouterId) -> &[(IfaceId, RouterId)] {
        self.trees.get(&from).map_or(&[], |t| t.next_hops(to))
    }

    /// IGP distance between two domain routers.
    pub fn distance(&self, from: RouterId, to: RouterId) -> Option<u32> {
        self.trees.get(&from)?.distance(to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vendor::Vendor;
    use std::net::Ipv4Addr;

    /// Builds the topology of the paper's Fig. 3:
    ///
    /// ```text
    /// A - B - D - E - G - H      (all cost 1)
    ///      \   \_ F _/
    ///       C (stub off B)
    /// ```
    /// plus a direct D—E link which Fig. 3 steers through with an
    /// adjacency SID.
    fn fig3_topology() -> (Topology, Vec<RouterId>) {
        let mut topo = Topology::new();
        let asn = AsNumber(65_001);
        let names = ["A", "B", "C", "D", "E", "F", "G", "H"];
        let routers: Vec<RouterId> = names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                topo.add_router(*name, asn, Vendor::Cisco, Ipv4Addr::new(10, 255, 1, (i + 1) as u8))
            })
            .collect();
        let mut nth = 0u8;
        let mut link = |topo: &mut Topology, a: usize, b: usize, cost: u32| {
            nth += 1;
            topo.add_link(
                routers[a],
                Ipv4Addr::new(10, 1, nth, 1),
                routers[b],
                Ipv4Addr::new(10, 1, nth, 2),
                cost,
            );
        };
        link(&mut topo, 0, 1, 1); // A-B
        link(&mut topo, 1, 2, 1); // B-C
        link(&mut topo, 1, 3, 1); // B-D
        link(&mut topo, 3, 4, 1); // D-E
        link(&mut topo, 3, 5, 1); // D-F
        link(&mut topo, 5, 6, 1); // F-G
        link(&mut topo, 4, 6, 1); // E-G
        link(&mut topo, 6, 7, 1); // G-H
        (topo, routers)
    }

    #[test]
    fn distances_match_hand_computation() {
        let (topo, r) = fig3_topology();
        let tree = SpfTree::compute(&topo, r[0], |_| true);
        // A=0 B=1 C=2 D=2 E=3 F=3 G=4 H=5
        let expect = [0u32, 1, 2, 2, 3, 3, 4, 5];
        for (i, want) in expect.iter().enumerate() {
            assert_eq!(tree.distance(r[i]), Some(*want), "distance to {i}");
        }
    }

    #[test]
    fn next_hop_is_first_edge_of_path() {
        let (topo, r) = fig3_topology();
        let tree = SpfTree::compute(&topo, r[0], |_| true);
        let (iface, neighbour) = tree.next_hop(r[7]).unwrap();
        assert_eq!(neighbour, r[1], "everything from A goes via B");
        assert_eq!(topo.iface(iface).router, r[0]);
        assert_eq!(tree.next_hop(r[0]), None, "no next hop to self");
    }

    #[test]
    fn path_lists_every_router() {
        let (topo, r) = fig3_topology();
        let tree = SpfTree::compute(&topo, r[0], |_| true);
        let path = tree.path(r[7]).unwrap();
        assert_eq!(path.first(), Some(&r[0]));
        assert_eq!(path.last(), Some(&r[7]));
        assert_eq!(path.len(), 6); // A B D E|F G H
        assert_eq!(tree.path(r[0]).unwrap(), vec![r[0]]);
    }

    #[test]
    fn tie_break_prefers_lower_predecessor_id() {
        let (topo, r) = fig3_topology();
        // From D (r[3]) to G (r[6]): via E (r[4]) or F (r[5]), both
        // cost 2. The deterministic rule must choose predecessor E.
        let tree = SpfTree::compute(&topo, r[3], |_| true);
        let path = tree.path(r[6]).unwrap();
        assert_eq!(path, vec![r[3], r[4], r[6]]);
    }

    #[test]
    fn domain_filter_excludes_foreign_routers() {
        let (topo, r) = fig3_topology();
        // Restrict the domain to {A, B}: D becomes unreachable.
        let members = [r[0], r[1]];
        let spf = DomainSpf::for_members(&topo, &members);
        assert_eq!(spf.distance(r[0], r[1]), Some(1));
        assert_eq!(spf.tree(r[0]).unwrap().distance(r[3]), None);
        assert!(spf.tree(r[3]).is_none());
    }

    #[test]
    fn link_failure_reroutes() {
        let (mut topo, r) = fig3_topology();
        // Down the D—E link (4th added, LinkId 3): D now reaches E via F,G.
        let tree_before = SpfTree::compute(&topo, r[3], |_| true);
        assert_eq!(tree_before.distance(r[4]), Some(1));
        topo.set_link_up(crate::ids::LinkId(3), false);
        let tree = SpfTree::compute(&topo, r[3], |_| true);
        assert_eq!(tree.distance(r[4]), Some(3), "D-F-G-E after failure");
        assert_eq!(tree.path(r[4]).unwrap(), vec![r[3], r[5], r[6], r[4]]);
    }

    #[test]
    fn ecmp_diamond_exposes_both_first_hops() {
        // A—B—D and A—C—D, all cost 1: two equal-cost first hops.
        let mut topo = Topology::new();
        let asn = AsNumber(65_002);
        let r: Vec<RouterId> = ["A", "B", "C", "D"]
            .iter()
            .enumerate()
            .map(|(i, n)| {
                topo.add_router(*n, asn, Vendor::Cisco, Ipv4Addr::new(10, 254, 1, (i + 1) as u8))
            })
            .collect();
        let pairs = [(0, 1), (0, 2), (1, 3), (2, 3)];
        for (k, (a, b)) in pairs.iter().enumerate() {
            topo.add_link(
                r[*a],
                Ipv4Addr::new(10, 254, k as u8 + 10, 1),
                r[*b],
                Ipv4Addr::new(10, 254, k as u8 + 10, 2),
                1,
            );
        }
        let tree = SpfTree::compute(&topo, r[0], |_| true);
        let hops = tree.next_hops(r[3]);
        assert_eq!(hops.len(), 2, "both equal-cost branches retained");
        let neighbours: Vec<RouterId> = hops.iter().map(|(_, n)| *n).collect();
        assert!(neighbours.contains(&r[1]) && neighbours.contains(&r[2]));
        // The primary is the deterministic tie-break winner and
        // next_hop() agrees with next_hops()[0].
        assert_eq!(tree.next_hop(r[3]), Some(hops[0]));
        // Unreachable targets expose an empty set.
        assert!(tree.next_hops(RouterId(99)).is_empty());
    }

    #[test]
    fn ecmp_sets_are_deterministic() {
        let (topo, r) = fig3_topology();
        let a = SpfTree::compute(&topo, r[3], |_| true);
        let b = SpfTree::compute(&topo, r[3], |_| true);
        for &dst in &r {
            assert_eq!(a.next_hops(dst), b.next_hops(dst));
        }
    }

    #[test]
    fn all_pairs_agree_with_single_source() {
        let (topo, r) = fig3_topology();
        let spf = DomainSpf::for_as(&topo, AsNumber(65_001));
        for &from in &r {
            let tree = SpfTree::compute(&topo, from, |_| true);
            for &to in &r {
                assert_eq!(spf.distance(from, to), tree.distance(to));
            }
        }
    }
}
