//! The router-level topology graph and its builder API.
//!
//! A [`Topology`] owns routers, interfaces and point-to-point links for
//! *all* modelled ASes at once — the synthetic Internet is one graph,
//! and AS membership is a router attribute, mirroring how traceroute
//! sees the real thing (one address space, AS boundaries inferred).

use crate::ids::{AsNumber, IfaceId, LinkId, RouterId};
use crate::vendor::Vendor;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A router.
#[derive(Debug, Clone)]
pub struct Router {
    /// This router's identifier.
    pub id: RouterId,
    /// Human-readable name (used in reports and DNS-like strings).
    pub name: String,
    /// The AS this router belongs to.
    pub asn: AsNumber,
    /// Hardware vendor (drives TTL signatures and SR label blocks).
    pub vendor: Vendor,
    /// Loopback address, unique across the topology.
    pub loopback: Ipv4Addr,
    /// Interfaces attached to this router.
    pub ifaces: Vec<IfaceId>,
}

/// A numbered interface on a router.
#[derive(Debug, Clone)]
pub struct Interface {
    /// This interface's identifier.
    pub id: IfaceId,
    /// Owning router.
    pub router: RouterId,
    /// Interface address, unique across the topology.
    pub addr: Ipv4Addr,
    /// The link this interface terminates, if connected.
    pub link: Option<LinkId>,
}

/// A bidirectional point-to-point link with a symmetric IGP cost.
#[derive(Debug, Clone)]
pub struct Link {
    /// This link's identifier.
    pub id: LinkId,
    /// The two endpoint interfaces.
    pub endpoints: [IfaceId; 2],
    /// Symmetric IGP metric.
    pub cost: u32,
    /// Administrative/operational state; SPF ignores links that are
    /// down (used for failure-injection tests).
    pub up: bool,
}

/// The topology graph.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    routers: Vec<Router>,
    ifaces: Vec<Interface>,
    links: Vec<Link>,
    addr_index: HashMap<Ipv4Addr, IfaceId>,
    loopback_index: HashMap<Ipv4Addr, RouterId>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Adds a router.
    ///
    /// # Panics
    /// Panics if `loopback` collides with an existing loopback or
    /// interface address — topologies are built by generators that must
    /// guarantee address uniqueness.
    pub fn add_router(
        &mut self,
        name: impl Into<String>,
        asn: AsNumber,
        vendor: Vendor,
        loopback: Ipv4Addr,
    ) -> RouterId {
        assert!(
            !self.loopback_index.contains_key(&loopback)
                && !self.addr_index.contains_key(&loopback),
            "duplicate loopback {loopback}"
        );
        let id = RouterId(self.routers.len() as u32);
        self.routers.push(Router {
            id,
            name: name.into(),
            asn,
            vendor,
            loopback,
            ifaces: Vec::new(),
        });
        self.loopback_index.insert(loopback, id);
        id
    }

    /// Connects two routers with a point-to-point link, creating one
    /// interface on each side with the given addresses.
    ///
    /// # Panics
    /// Panics on address collisions or self-links.
    pub fn add_link(
        &mut self,
        a: RouterId,
        addr_a: Ipv4Addr,
        b: RouterId,
        addr_b: Ipv4Addr,
        cost: u32,
    ) -> LinkId {
        assert_ne!(a, b, "self-links are not allowed");
        let link_id = LinkId(self.links.len() as u32);
        let if_a = self.add_iface(a, addr_a, Some(link_id));
        let if_b = self.add_iface(b, addr_b, Some(link_id));
        self.links.push(Link { id: link_id, endpoints: [if_a, if_b], cost, up: true });
        link_id
    }

    fn add_iface(&mut self, router: RouterId, addr: Ipv4Addr, link: Option<LinkId>) -> IfaceId {
        assert!(
            !self.addr_index.contains_key(&addr) && !self.loopback_index.contains_key(&addr),
            "duplicate interface address {addr}"
        );
        let id = IfaceId(self.ifaces.len() as u32);
        self.ifaces.push(Interface { id, router, addr, link });
        self.addr_index.insert(addr, id);
        self.routers[router.index()].ifaces.push(id);
        id
    }

    /// Number of routers.
    pub fn router_count(&self) -> usize {
        self.routers.len()
    }

    /// Number of interfaces.
    pub fn iface_count(&self) -> usize {
        self.ifaces.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Immutable access to a router.
    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.index()]
    }

    /// Immutable access to an interface.
    pub fn iface(&self, id: IfaceId) -> &Interface {
        &self.ifaces[id.index()]
    }

    /// Immutable access to a link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Sets a link's operational state (failure injection).
    pub fn set_link_up(&mut self, id: LinkId, up: bool) {
        self.links[id.index()].up = up;
    }

    /// All routers.
    pub fn routers(&self) -> impl Iterator<Item = &Router> {
        self.routers.iter()
    }

    /// All interfaces.
    pub fn ifaces(&self) -> impl Iterator<Item = &Interface> {
        self.ifaces.iter()
    }

    /// All links.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter()
    }

    /// Routers belonging to `asn`.
    pub fn routers_in_as(&self, asn: AsNumber) -> impl Iterator<Item = &Router> + '_ {
        self.routers.iter().filter(move |r| r.asn == asn)
    }

    /// Looks up an interface by address.
    pub fn iface_by_addr(&self, addr: Ipv4Addr) -> Option<&Interface> {
        self.addr_index.get(&addr).map(|id| self.iface(*id))
    }

    /// Looks up a router by loopback address.
    pub fn router_by_loopback(&self, addr: Ipv4Addr) -> Option<&Router> {
        self.loopback_index.get(&addr).map(|id| self.router(*id))
    }

    /// Resolves any address (interface or loopback) to its owning
    /// router — what MIDAR-style alias resolution reconstructs from
    /// the outside.
    pub fn router_by_any_addr(&self, addr: Ipv4Addr) -> Option<&Router> {
        if let Some(iface) = self.iface_by_addr(addr) {
            return Some(self.router(iface.router));
        }
        self.router_by_loopback(addr)
    }

    /// The interface on the far side of `iface`'s link, if the link is
    /// up.
    pub fn remote_iface(&self, iface: IfaceId) -> Option<&Interface> {
        let link_id = self.iface(iface).link?;
        let link = self.link(link_id);
        if !link.up {
            return None;
        }
        let [a, b] = link.endpoints;
        let remote = if a == iface { b } else { a };
        Some(self.iface(remote))
    }

    /// Iterates over `router`'s live adjacencies as
    /// `(link, local iface, remote iface, remote router, cost)`.
    pub fn adjacencies(
        &self,
        router: RouterId,
    ) -> impl Iterator<Item = (LinkId, IfaceId, IfaceId, RouterId, u32)> + '_ {
        self.routers[router.index()].ifaces.iter().filter_map(move |&iface_id| {
            let link_id = self.iface(iface_id).link?;
            let link = self.link(link_id);
            if !link.up {
                return None;
            }
            let [a, b] = link.endpoints;
            let remote_if = if a == iface_id { b } else { a };
            let remote = self.iface(remote_if).router;
            Some((link_id, iface_id, remote_if, remote, link.cost))
        })
    }

    /// Number of live IGP adjacencies of a router — the number of
    /// adjacency SIDs an SR router generates (paper §2.3).
    pub fn degree(&self, router: RouterId) -> usize {
        self.adjacencies(router).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    fn two_router_topo() -> (Topology, RouterId, RouterId, LinkId) {
        let mut topo = Topology::new();
        let asn = AsNumber(65_000);
        let a = topo.add_router("a", asn, Vendor::Cisco, ip(10, 255, 0, 1));
        let b = topo.add_router("b", asn, Vendor::Juniper, ip(10, 255, 0, 2));
        let l = topo.add_link(a, ip(10, 0, 0, 1), b, ip(10, 0, 0, 2), 10);
        (topo, a, b, l)
    }

    #[test]
    fn build_and_lookup() {
        let (topo, a, b, l) = two_router_topo();
        assert_eq!(topo.router_count(), 2);
        assert_eq!(topo.iface_count(), 2);
        assert_eq!(topo.link_count(), 1);
        assert_eq!(topo.router(a).vendor, Vendor::Cisco);
        assert_eq!(topo.iface_by_addr(ip(10, 0, 0, 2)).unwrap().router, b);
        assert_eq!(topo.router_by_loopback(ip(10, 255, 0, 1)).unwrap().id, a);
        assert_eq!(topo.router_by_any_addr(ip(10, 0, 0, 1)).unwrap().id, a);
        assert_eq!(topo.router_by_any_addr(ip(10, 255, 0, 2)).unwrap().id, b);
        assert!(topo.router_by_any_addr(ip(1, 1, 1, 1)).is_none());
        assert_eq!(topo.link(l).cost, 10);
    }

    #[test]
    fn adjacencies_and_degree() {
        let (mut topo, a, b, l) = two_router_topo();
        let c = topo.add_router("c", AsNumber(65_000), Vendor::Cisco, ip(10, 255, 0, 3));
        topo.add_link(a, ip(10, 0, 1, 1), c, ip(10, 0, 1, 2), 5);

        assert_eq!(topo.degree(a), 2);
        assert_eq!(topo.degree(b), 1);
        let neighbours: Vec<RouterId> =
            topo.adjacencies(a).map(|(_, _, _, remote, _)| remote).collect();
        assert_eq!(neighbours, vec![b, c]);

        // Downing the a—b link removes the adjacency from both sides.
        topo.set_link_up(l, false);
        assert_eq!(topo.degree(a), 1);
        assert_eq!(topo.degree(b), 0);
        let a_if = topo.router(a).ifaces[0];
        assert!(topo.remote_iface(a_if).is_none());
    }

    #[test]
    fn remote_iface_crosses_link() {
        let (topo, a, b, _) = two_router_topo();
        let a_if = topo.router(a).ifaces[0];
        let remote = topo.remote_iface(a_if).unwrap();
        assert_eq!(remote.router, b);
        assert_eq!(remote.addr, ip(10, 0, 0, 2));
    }

    #[test]
    fn routers_in_as_filters() {
        let (mut topo, _, _, _) = two_router_topo();
        topo.add_router("x", AsNumber(64_999), Vendor::Nokia, ip(10, 255, 0, 9));
        assert_eq!(topo.routers_in_as(AsNumber(65_000)).count(), 2);
        assert_eq!(topo.routers_in_as(AsNumber(64_999)).count(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate loopback")]
    fn duplicate_loopback_panics() {
        let mut topo = Topology::new();
        topo.add_router("a", AsNumber(1), Vendor::Cisco, ip(1, 1, 1, 1));
        topo.add_router("b", AsNumber(1), Vendor::Cisco, ip(1, 1, 1, 1));
    }

    #[test]
    #[should_panic(expected = "duplicate interface address")]
    fn duplicate_iface_addr_panics() {
        let (mut topo, a, b, _) = two_router_topo();
        topo.add_link(a, ip(10, 0, 0, 1), b, ip(10, 0, 0, 9), 1);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        let (mut topo, a, _, _) = two_router_topo();
        topo.add_link(a, ip(10, 9, 0, 1), a, ip(10, 9, 0, 2), 1);
    }
}
