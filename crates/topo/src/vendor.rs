//! Hardware vendor vocabulary.
//!
//! The paper's survey (Table 2 / Fig. 5a) and its fingerprinting layer
//! both speak in terms of router vendors; the SR label-block table
//! (Table 1) is indexed by vendor too. This enum is the shared
//! vocabulary for all three.

use core::fmt;
use core::str::FromStr;

/// A router hardware vendor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Vendor {
    /// Cisco Systems (IOS / IOS-XR).
    Cisco,
    /// Juniper Networks (Junos).
    Juniper,
    /// Huawei (VRP).
    Huawei,
    /// Nokia, formerly Alcatel-Lucent (SR OS).
    Nokia,
    /// Arista Networks (EOS).
    Arista,
    /// MikroTik (RouterOS).
    Mikrotik,
    /// Linux-based routing platforms (FRR, BIRD hosts, …).
    Linux,
    /// Brocade / Extreme.
    Brocade,
}

impl Vendor {
    /// All vendors the survey proposed (Table 2), in survey order.
    pub const ALL: [Vendor; 8] = [
        Vendor::Cisco,
        Vendor::Juniper,
        Vendor::Huawei,
        Vendor::Nokia,
        Vendor::Arista,
        Vendor::Mikrotik,
        Vendor::Linux,
        Vendor::Brocade,
    ];

    /// Initial TTL a router of this vendor uses for ICMP echo replies
    /// (first component of the Vanaubel et al. TTL signature).
    pub const fn echo_reply_initial_ttl(self) -> u8 {
        match self {
            Vendor::Cisco | Vendor::Huawei | Vendor::Brocade => 255,
            Vendor::Juniper => 64,
            Vendor::Nokia => 64,
            Vendor::Arista | Vendor::Mikrotik | Vendor::Linux => 64,
        }
    }

    /// Initial TTL a router of this vendor uses for ICMP time-exceeded
    /// messages (second component of the TTL signature).
    ///
    /// Cisco and Huawei share the `(255, 255)` signature — the very
    /// ambiguity that forces AReST to match against the intersection
    /// of their SR label ranges (paper §5).
    pub const fn time_exceeded_initial_ttl(self) -> u8 {
        match self {
            Vendor::Cisco | Vendor::Huawei => 255,
            Vendor::Juniper => 255,
            Vendor::Nokia => 255,
            Vendor::Arista | Vendor::Mikrotik | Vendor::Linux | Vendor::Brocade => 64,
        }
    }
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Vendor::Cisco => "Cisco",
            Vendor::Juniper => "Juniper",
            Vendor::Huawei => "Huawei",
            Vendor::Nokia => "Nokia",
            Vendor::Arista => "Arista",
            Vendor::Mikrotik => "MikroTik",
            Vendor::Linux => "Linux",
            Vendor::Brocade => "Brocade",
        };
        write!(f, "{name}")
    }
}

impl FromStr for Vendor {
    type Err = ();
    fn from_str(s: &str) -> Result<Vendor, ()> {
        match s.to_ascii_lowercase().as_str() {
            "cisco" => Ok(Vendor::Cisco),
            "juniper" => Ok(Vendor::Juniper),
            "huawei" => Ok(Vendor::Huawei),
            "nokia" | "alcatel" | "alcatel-lucent" => Ok(Vendor::Nokia),
            "arista" => Ok(Vendor::Arista),
            "mikrotik" => Ok(Vendor::Mikrotik),
            "linux" => Ok(Vendor::Linux),
            "brocade" => Ok(Vendor::Brocade),
            _ => Err(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cisco_and_huawei_share_ttl_signature() {
        assert_eq!(
            (Vendor::Cisco.echo_reply_initial_ttl(), Vendor::Cisco.time_exceeded_initial_ttl()),
            (Vendor::Huawei.echo_reply_initial_ttl(), Vendor::Huawei.time_exceeded_initial_ttl()),
        );
    }

    #[test]
    fn juniper_signature_differs_from_cisco() {
        assert_ne!(
            (Vendor::Juniper.echo_reply_initial_ttl(), Vendor::Juniper.time_exceeded_initial_ttl()),
            (Vendor::Cisco.echo_reply_initial_ttl(), Vendor::Cisco.time_exceeded_initial_ttl()),
        );
    }

    #[test]
    fn parse_round_trip() {
        for vendor in Vendor::ALL {
            assert_eq!(vendor.to_string().parse::<Vendor>().unwrap(), vendor);
        }
        assert!("cisco".parse::<Vendor>().is_ok());
        assert!("alcatel".parse::<Vendor>().unwrap() == Vendor::Nokia);
        assert!("unknown-vendor".parse::<Vendor>().is_err());
    }
}
