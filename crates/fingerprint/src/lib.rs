//! # arest-fingerprint
//!
//! Router hardware-vendor fingerprinting, reproducing the two methods
//! the paper combines (§5):
//!
//! * [`ttl`] — TTL-based signatures (Vanaubel et al.): the pair of
//!   initial TTLs a router uses for echo replies and time-exceeded
//!   messages. Coarse — Cisco and Huawei share `(255, 255)`, which is
//!   why the paper matches their SRGB *intersection* for TTL-derived
//!   flags.
//! * [`snmp`] — a simulated SNMPv3 fingerprint dataset (Albakour et
//!   al.): exact vendors, but partial coverage, and no Arista
//!   fingerprints at all (the paper notes Arista is absent from the
//!   public dataset).
//! * [`combined`] — the fusion rule: SNMPv3 takes precedence over TTL
//!   when both speak for the same hop.
//! * [`cache`] — a shared, sharded, memoizing cache over the same
//!   fusion rule: the streaming pipeline's ASes consult it on demand
//!   and each address is probed exactly once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod combined;
pub mod snmp;
pub mod ttl;

pub use cache::{FingerprintCache, RehydrateStats};
pub use combined::{fingerprint_addresses, ttl_evidence, FingerprintSource, VendorEvidence};
pub use snmp::SnmpDataset;
pub use ttl::{ttl_class, TtlClass, TtlSignature};
