//! A simulated SNMPv3 fingerprint dataset (Albakour et al.).
//!
//! The real dataset is a public snapshot of routers whose SNMPv3
//! engine responses betray their vendor. This module harvests the
//! same thing from the simulator: every router whose management plane
//! answers SNMPv3 (`snmp_responsive`) contributes all of its
//! addresses with its exact vendor — except Arista devices, absent
//! from the public dataset the paper used (Appendix C: "Arista
//! equipment was absent from our results").

use arest_simnet::Network;
use arest_topo::vendor::Vendor;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// An address → exact-vendor fingerprint dataset.
#[derive(Debug, Clone, Default)]
pub struct SnmpDataset {
    entries: HashMap<Ipv4Addr, Vendor>,
}

impl SnmpDataset {
    /// An empty dataset.
    pub fn new() -> SnmpDataset {
        SnmpDataset::default()
    }

    /// Harvests the dataset from a network: all addresses (interfaces
    /// and loopback) of SNMP-responsive routers, minus Arista.
    pub fn harvest(net: &Network) -> SnmpDataset {
        let mut entries = HashMap::new();
        for router in net.topo().routers() {
            if !net.plane(router.id).snmp_responsive {
                continue;
            }
            if router.vendor == Vendor::Arista {
                continue; // no Arista fingerprints in the public dataset
            }
            entries.insert(router.loopback, router.vendor);
            for &iface in &router.ifaces {
                entries.insert(net.topo().iface(iface).addr, router.vendor);
            }
        }
        SnmpDataset { entries }
    }

    /// Adds one entry (for hand-built datasets in tests).
    pub fn insert(&mut self, addr: Ipv4Addr, vendor: Vendor) {
        self.entries.insert(addr, vendor);
    }

    /// Looks up an address.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<Vendor> {
        self.entries.get(&addr).copied()
    }

    /// Number of fingerprinted addresses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = (&Ipv4Addr, &Vendor)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arest_topo::graph::Topology;
    use arest_topo::ids::AsNumber;

    fn net_with(vendors: &[(Vendor, bool)]) -> Network {
        let mut topo = Topology::new();
        let mut prev = None;
        for (i, (vendor, _)) in vendors.iter().enumerate() {
            let r = topo.add_router(
                format!("r{i}"),
                AsNumber(65_200),
                *vendor,
                Ipv4Addr::new(10, 255, 20, (i + 1) as u8),
            );
            if let Some(p) = prev {
                topo.add_link(
                    p,
                    Ipv4Addr::new(10, 20, i as u8, 1),
                    r,
                    Ipv4Addr::new(10, 20, i as u8, 2),
                    1,
                );
            }
            prev = Some(r);
        }
        let mut net = Network::new(topo);
        for (i, (_, responsive)) in vendors.iter().enumerate() {
            net.plane_mut(arest_topo::ids::RouterId(i as u32)).snmp_responsive = *responsive;
        }
        net
    }

    #[test]
    fn harvest_includes_only_responsive_routers() {
        let net = net_with(&[(Vendor::Cisco, true), (Vendor::Juniper, false)]);
        let dataset = SnmpDataset::harvest(&net);
        assert_eq!(dataset.lookup(Ipv4Addr::new(10, 255, 20, 1)), Some(Vendor::Cisco));
        assert_eq!(dataset.lookup(Ipv4Addr::new(10, 255, 20, 2)), None);
        // The responsive router's interface address is covered too.
        assert_eq!(dataset.lookup(Ipv4Addr::new(10, 20, 1, 1)), Some(Vendor::Cisco));
    }

    #[test]
    fn arista_is_never_harvested() {
        let net = net_with(&[(Vendor::Arista, true), (Vendor::Huawei, true)]);
        let dataset = SnmpDataset::harvest(&net);
        assert_eq!(dataset.lookup(Ipv4Addr::new(10, 255, 20, 1)), None, "Arista absent");
        assert_eq!(dataset.lookup(Ipv4Addr::new(10, 255, 20, 2)), Some(Vendor::Huawei));
    }

    #[test]
    fn empty_and_insert() {
        let mut dataset = SnmpDataset::new();
        assert!(dataset.is_empty());
        dataset.insert(Ipv4Addr::new(1, 1, 1, 1), Vendor::Nokia);
        assert_eq!(dataset.len(), 1);
        assert_eq!(dataset.iter().count(), 1);
    }
}
