//! A shared, sharded, memoizing fingerprint cache.
//!
//! The staged pipeline fingerprinted every address in one global
//! barrier pass. The streaming pipeline instead asks for evidence the
//! moment an AS's campaign completes — many ASes, concurrently, often
//! for the *same* address (borders are shared). This cache makes that
//! cheap and deterministic:
//!
//! * **compute-once** — the expensive half of the TTL signature (the
//!   echo-reply probe) is memoized per address; the write lock is held
//!   across the probe, so two ASes racing on one address still probe
//!   the network exactly once. Probe counts — and therefore every
//!   `simnet`/`tnt` counter — stay schedule-independent.
//! * **lock-striped** — addresses hash across 16 independent `RwLock`
//!   shards, so unrelated misses don't serialize and hits take a
//!   shared (read) lock only.
//! * **pure evidence** — [`FingerprintCache::evidence`] combines the
//!   cached echo TTL with the caller's time-exceeded observation and
//!   the SNMPv3 dataset through the same fusion rule as
//!   [`crate::combined::fingerprint_addresses`], so a cached answer is
//!   identical to a freshly computed one.

use crate::combined::{ttl_evidence, FingerprintSource, VendorEvidence};
use crate::snmp::SnmpDataset;
use crate::ttl::ping_echo_ttl;
use arest_conc::sync::RwLock;
use arest_obs::Counter;
use arest_simnet::Network;
use arest_topo::ids::RouterId;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::LazyLock;

/// Number of lock stripes. Spreads concurrent misses from different
/// ASes across independent locks; 16 is ample for the pool's worker
/// counts.
const SHARDS: usize = 16;

/// Cache-specific handles into the global `arest-obs` registry (the
/// fusion outcome counters are shared with [`crate::combined`]).
struct Metrics {
    /// `fingerprint.cache.hits` — evidence requests answered from a
    /// memoized echo probe.
    hits: Counter,
    /// `fingerprint.cache.misses` — echo probes actually sent (one
    /// per distinct address, regardless of scheduling).
    misses: Counter,
    /// `fingerprint.cache.rehydrated` — entries carried in from a
    /// previous run's export (addresses that skip their echo probe
    /// entirely this run).
    rehydrated: Counter,
    /// `fingerprint.cache.stale` — carried entries dropped at
    /// rehydration: failed probes (no echo reply last run) are
    /// re-probed fresh, and addresses already memoized this run keep
    /// their fresh value.
    stale: Counter,
}

static METRICS: LazyLock<Metrics> = LazyLock::new(|| {
    let registry = arest_obs::global();
    Metrics {
        hits: registry.counter("fingerprint.cache.hits"),
        misses: registry.counter("fingerprint.cache.misses"),
        rehydrated: registry.counter("fingerprint.cache.rehydrated"),
        stale: registry.counter("fingerprint.cache.stale"),
    }
});

/// Outcome of a [`FingerprintCache::rehydrate`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RehydrateStats {
    /// Entries installed (addresses that skip their echo probe).
    pub rehydrated: usize,
    /// Entries dropped (failed probes, or already memoized this run).
    pub stale: usize,
}

/// The shared fingerprint cache. Borrow it once per build (it pins the
/// network and the probing vantage point) and hand `&FingerprintCache`
/// to every worker.
pub struct FingerprintCache<'net> {
    net: &'net Network,
    entry: RouterId,
    src: Ipv4Addr,
    shards: Vec<RwLock<HashMap<Ipv4Addr, Option<u8>>>>,
}

impl<'net> FingerprintCache<'net> {
    /// Creates an empty cache probing through `entry` from `src` (the
    /// pipeline uses its first vantage point, as the staged
    /// fingerprint pass did).
    pub fn new(net: &'net Network, entry: RouterId, src: Ipv4Addr) -> FingerprintCache<'net> {
        // Force the counter statics now, while construction is still
        // single-threaded. A `LazyLock`'s one-time initialization
        // blocks every other contender on an OS futex, so first-touch
        // from racing workers would serialize them invisibly (and
        // wedge a model-check run, where the scheduler cannot see
        // that block).
        let _ = (&*METRICS, &*crate::combined::METRICS);
        FingerprintCache {
            net,
            entry,
            src,
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, addr: Ipv4Addr) -> &RwLock<HashMap<Ipv4Addr, Option<u8>>> {
        &self.shards[u32::from(addr) as usize % SHARDS]
    }

    /// The observed echo-reply TTL for `addr` (`None` when the address
    /// never answers), memoized: the first request probes the network,
    /// every later request — from any thread — reads the cached value.
    pub fn echo_ttl(&self, addr: Ipv4Addr) -> Option<u8> {
        let metrics = &*METRICS;
        let shard = self.shard(addr);
        if let Some(&ttl) = shard.read().expect("fingerprint shard lock").get(&addr) {
            metrics.hits.inc();
            return ttl;
        }
        let mut guard = shard.write().expect("fingerprint shard lock");
        if let Some(&ttl) = guard.get(&addr) {
            metrics.hits.inc();
            return ttl;
        }
        // Probe while holding the shard's write lock: a concurrent
        // requester for the same address blocks here instead of
        // probing twice, keeping probe counters deterministic.
        metrics.misses.inc();
        let ttl = ping_echo_ttl(self.net, self.entry, self.src, addr);
        guard.insert(addr, ttl);
        ttl
    }

    /// Full fusion evidence for one address: SNMPv3 exactness first
    /// (§5 precedence, no probe needed), then the TTL signature built
    /// from the memoized echo probe and the caller's time-exceeded
    /// reply TTL. Counts into the same `fingerprint.*` series as the
    /// batch API.
    pub fn evidence(
        &self,
        addr: Ipv4Addr,
        te_reply_ttl: u8,
        snmp: &SnmpDataset,
    ) -> Option<(VendorEvidence, FingerprintSource)> {
        let fusion = &*crate::combined::METRICS;
        fusion.addresses.inc();
        if let Some(vendor) = snmp.lookup(addr) {
            fusion.snmp_hits.inc();
            return Some((VendorEvidence::Exact(vendor), FingerprintSource::Snmp));
        }
        let Some(echo_ttl) = self.echo_ttl(addr) else {
            fusion.unresolved.inc();
            return None;
        };
        match ttl_evidence(echo_ttl, te_reply_ttl) {
            Some(evidence) => {
                fusion.ttl_hits.inc();
                Some((evidence, FingerprintSource::Ttl))
            }
            None => {
                fusion.unresolved.inc();
                None
            }
        }
    }

    /// Batched fusion evidence over an address column with its aligned
    /// time-exceeded reply TTLs (the shape the columnar trace arena's
    /// `collect_addrs` emits). Semantically identical to calling
    /// [`FingerprintCache::evidence`] per address — same memoization,
    /// same probe-once guarantee, same counter totals — but addresses
    /// are bucketed by shard first, so a whole batch takes each shard
    /// lock at most twice (one read pass for hits, one write pass for
    /// the misses) instead of locking per address.
    pub fn evidence_batch(
        &self,
        addrs: &[Ipv4Addr],
        te_reply_ttls: &[u8],
        snmp: &SnmpDataset,
    ) -> Vec<Option<(VendorEvidence, FingerprintSource)>> {
        assert_eq!(addrs.len(), te_reply_ttls.len(), "address and TE TTL columns must align");
        let fusion = &*crate::combined::METRICS;
        let metrics = &*METRICS;
        let mut out: Vec<Option<(VendorEvidence, FingerprintSource)>> = vec![None; addrs.len()];
        let mut by_shard: Vec<Vec<usize>> = (0..SHARDS).map(|_| Vec::new()).collect();
        for (i, &addr) in addrs.iter().enumerate() {
            fusion.addresses.inc();
            if let Some(vendor) = snmp.lookup(addr) {
                fusion.snmp_hits.inc();
                out[i] = Some((VendorEvidence::Exact(vendor), FingerprintSource::Snmp));
            } else {
                by_shard[u32::from(addr) as usize % SHARDS].push(i);
            }
        }
        for (shard, indices) in self.shards.iter().zip(&by_shard) {
            if indices.is_empty() {
                continue;
            }
            let mut misses: Vec<usize> = Vec::new();
            {
                let guard = shard.read().expect("fingerprint shard lock");
                for &i in indices {
                    match guard.get(&addrs[i]) {
                        Some(&ttl) => {
                            metrics.hits.inc();
                            out[i] = fuse_echo(ttl, te_reply_ttls[i]);
                        }
                        None => misses.push(i),
                    }
                }
            }
            if misses.is_empty() {
                continue;
            }
            let mut guard = shard.write().expect("fingerprint shard lock");
            for &i in &misses {
                // Re-check under the write lock: another thread (or a
                // duplicate earlier in this batch) may have probed the
                // address since the read pass.
                let ttl = match guard.get(&addrs[i]) {
                    Some(&ttl) => {
                        metrics.hits.inc();
                        ttl
                    }
                    None => {
                        metrics.misses.inc();
                        let ttl = ping_echo_ttl(self.net, self.entry, self.src, addrs[i]);
                        guard.insert(addrs[i], ttl);
                        ttl
                    }
                };
                out[i] = fuse_echo(ttl, te_reply_ttls[i]);
            }
        }
        out
    }

    /// Number of addresses with a memoized echo probe (for stats and
    /// tests; SNMPv3-resolved addresses never reach the probe step and
    /// are not cached).
    pub fn memoized(&self) -> usize {
        self.shards.iter().map(|s| s.read().expect("fingerprint shard lock").len()).sum()
    }

    /// Exports every memoized entry, address-sorted — the
    /// deterministic shape the run ledger's sidecar persists and
    /// [`FingerprintCache::rehydrate`] consumes on the next run.
    pub fn export(&self) -> Vec<(Ipv4Addr, Option<u8>)> {
        let mut entries: Vec<(Ipv4Addr, Option<u8>)> = Vec::new();
        for shard in &self.shards {
            let guard = shard.read().expect("fingerprint shard lock");
            entries.extend(guard.iter().map(|(&addr, &ttl)| (addr, ttl)));
        }
        entries.sort_unstable_by_key(|&(addr, _)| addr);
        entries
    }

    /// Seeds the cache from a previous run's [`FingerprintCache::export`]
    /// so unchanged addresses skip their echo probe entirely. Carried
    /// failures (`None` echo TTL) are *not* installed — a non-answer is
    /// not evidence worth trusting across runs — and an address already
    /// memoized this run keeps its fresh value; both count as `stale`.
    /// Safe to race against [`FingerprintCache::evidence_batch`]: every
    /// insert happens under the shard's write lock with the same
    /// occupied-entry re-check, so an address is never probed *and*
    /// rehydrated.
    pub fn rehydrate(&self, entries: &[(Ipv4Addr, Option<u8>)]) -> RehydrateStats {
        let metrics = &*METRICS;
        let mut stats = RehydrateStats::default();
        for &(addr, ttl) in entries {
            if ttl.is_none() {
                stats.stale += 1;
                metrics.stale.inc();
                continue;
            }
            let mut guard = self.shard(addr).write().expect("fingerprint shard lock");
            match guard.entry(addr) {
                std::collections::hash_map::Entry::Occupied(_) => {
                    stats.stale += 1;
                    metrics.stale.inc();
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(ttl);
                    stats.rehydrated += 1;
                    metrics.rehydrated.inc();
                }
            }
        }
        stats
    }
}

/// The TTL half of the fusion rule over a memoized echo TTL, with the
/// same outcome counting as [`FingerprintCache::evidence`].
fn fuse_echo(
    echo_ttl: Option<u8>,
    te_reply_ttl: u8,
) -> Option<(VendorEvidence, FingerprintSource)> {
    let fusion = &*crate::combined::METRICS;
    let Some(echo_ttl) = echo_ttl else {
        fusion.unresolved.inc();
        return None;
    };
    match ttl_evidence(echo_ttl, te_reply_ttl) {
        Some(evidence) => {
            fusion.ttl_hits.inc();
            Some((evidence, FingerprintSource::Ttl))
        }
        None => {
            fusion.unresolved.inc();
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combined::fingerprint_addresses;
    use arest_simnet::plane::Route;
    use arest_topo::graph::Topology;
    use arest_topo::ids::AsNumber;
    use arest_topo::prefix::Prefix;
    use arest_topo::vendor::Vendor;

    /// R0(Cisco) — R1(Juniper) — R2(Huawei); probes enter at R0.
    fn testbed() -> (Network, Vec<Ipv4Addr>) {
        let mut topo = Topology::new();
        let asn = AsNumber(65_310);
        let vendors = [Vendor::Cisco, Vendor::Juniper, Vendor::Huawei];
        let routers: Vec<RouterId> = vendors
            .iter()
            .enumerate()
            .map(|(i, v)| {
                topo.add_router(format!("k{i}"), asn, *v, Ipv4Addr::new(10, 255, 31, (i + 1) as u8))
            })
            .collect();
        for i in 0..2u8 {
            topo.add_link(
                routers[i as usize],
                Ipv4Addr::new(10, 31, i, 1),
                routers[i as usize + 1],
                Ipv4Addr::new(10, 31, i, 2),
                1,
            );
        }
        let loopbacks: Vec<Ipv4Addr> = routers.iter().map(|&r| topo.router(r).loopback).collect();
        let mut net = Network::new(topo);
        let spf = arest_topo::spf::DomainSpf::for_members(net.topo(), &routers);
        for &from in &routers {
            for (&to, &lo) in routers.iter().zip(&loopbacks) {
                if from == to {
                    continue;
                }
                if let Some((out_iface, next_router)) = spf.next_hop(from, to) {
                    net.plane_mut(from)
                        .install_route(Prefix::host(lo), Route { out_iface, next_router });
                }
            }
        }
        (net, loopbacks)
    }

    #[test]
    fn cache_evidence_matches_the_batch_api() {
        let (net, lo) = testbed();
        let src = Ipv4Addr::new(192, 0, 2, 9);
        let te: HashMap<Ipv4Addr, u8> = lo.iter().map(|&a| (a, 250)).collect();
        let mut snmp = SnmpDataset::new();
        snmp.insert(lo[1], Vendor::Juniper);
        let batch = fingerprint_addresses(&net, RouterId(0), src, &lo, &te, &snmp);
        let cache = FingerprintCache::new(&net, RouterId(0), src);
        for &addr in &lo {
            assert_eq!(
                cache.evidence(addr, te[&addr], &snmp),
                batch.get(&addr).copied(),
                "cache and batch fusion must agree on {addr}"
            );
        }
    }

    #[test]
    fn evidence_batch_matches_per_address_calls() {
        let (net, lo) = testbed();
        let src = Ipv4Addr::new(192, 0, 2, 9);
        let mut snmp = SnmpDataset::new();
        snmp.insert(lo[1], Vendor::Juniper);
        let serial = FingerprintCache::new(&net, RouterId(0), src);
        let expected: Vec<_> = lo.iter().map(|&a| serial.evidence(a, 250, &snmp)).collect();
        let batched = FingerprintCache::new(&net, RouterId(0), src);
        let te: Vec<u8> = vec![250; lo.len()];
        assert_eq!(batched.evidence_batch(&lo, &te, &snmp), expected);
        assert_eq!(batched.memoized(), serial.memoized());
        // A repeat batch — and intra-batch duplicates — hit the cache
        // instead of probing again.
        let doubled: Vec<Ipv4Addr> = lo.iter().chain(&lo).copied().collect();
        let te2: Vec<u8> = vec![250; doubled.len()];
        let twice = batched.evidence_batch(&doubled, &te2, &snmp);
        assert_eq!(&twice[..lo.len()], &expected[..]);
        assert_eq!(&twice[lo.len()..], &expected[..]);
        assert_eq!(batched.memoized(), serial.memoized(), "no re-probe on duplicates");
    }

    #[test]
    fn echo_probe_is_memoized_per_address() {
        let (net, lo) = testbed();
        let cache = FingerprintCache::new(&net, RouterId(0), Ipv4Addr::new(192, 0, 2, 9));
        let first = cache.echo_ttl(lo[0]);
        assert!(first.is_some());
        assert_eq!(cache.memoized(), 1);
        for _ in 0..5 {
            assert_eq!(cache.echo_ttl(lo[0]), first);
        }
        assert_eq!(cache.memoized(), 1, "repeat requests must not grow the cache");
        let snmp = SnmpDataset::new();
        for &addr in &lo {
            cache.evidence(addr, 250, &snmp);
        }
        assert_eq!(cache.memoized(), lo.len());
    }

    #[test]
    fn snmp_hits_bypass_the_probe_cache() {
        let (net, lo) = testbed();
        let cache = FingerprintCache::new(&net, RouterId(0), Ipv4Addr::new(192, 0, 2, 9));
        let mut snmp = SnmpDataset::new();
        snmp.insert(lo[2], Vendor::Huawei);
        assert_eq!(
            cache.evidence(lo[2], 250, &snmp),
            Some((VendorEvidence::Exact(Vendor::Huawei), FingerprintSource::Snmp))
        );
        assert_eq!(cache.memoized(), 0, "SNMPv3 precedence means no probe was needed");
    }

    #[test]
    fn export_rehydrate_roundtrip_skips_probes() {
        let (net, lo) = testbed();
        let snmp = SnmpDataset::new();
        let src = Ipv4Addr::new(192, 0, 2, 9);
        let first = FingerprintCache::new(&net, RouterId(0), src);
        let expected: Vec<_> = lo.iter().map(|&a| first.evidence(a, 250, &snmp)).collect();
        let exported = first.export();
        assert_eq!(exported.len(), first.memoized());
        assert!(exported.windows(2).all(|w| w[0].0 < w[1].0), "export must be address-sorted");

        let second = FingerprintCache::new(&net, RouterId(0), src);
        let stats = second.rehydrate(&exported);
        let live = exported.iter().filter(|(_, ttl)| ttl.is_some()).count();
        assert_eq!(stats, RehydrateStats { rehydrated: live, stale: exported.len() - live });
        assert_eq!(second.memoized(), live);

        // Rehydrated evidence is identical to freshly probed evidence
        // (the simulator's TTLs are seed-deterministic).
        let warm: Vec<_> = lo.iter().map(|&a| second.evidence(a, 250, &snmp)).collect();
        assert_eq!(warm, expected);

        // Re-rehydrating after the fact is inert: everything is stale.
        let again = second.rehydrate(&exported);
        assert_eq!(again.rehydrated, 0);
    }

    #[test]
    fn concurrent_readers_agree() {
        let (net, lo) = testbed();
        let cache = FingerprintCache::new(&net, RouterId(0), Ipv4Addr::new(192, 0, 2, 9));
        let serial: Vec<Option<u8>> = lo.iter().map(|&a| cache.echo_ttl(a)).collect();
        let fresh = FingerprintCache::new(&net, RouterId(0), Ipv4Addr::new(192, 0, 2, 9));
        arest_conc::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for (&addr, &expect) in lo.iter().zip(&serial) {
                        assert_eq!(fresh.echo_ttl(addr), expect);
                    }
                });
            }
        });
        assert_eq!(fresh.memoized(), lo.len());
    }
}
