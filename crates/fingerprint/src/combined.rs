//! Fingerprint fusion: SNMPv3 exactness over TTL coarseness.
//!
//! The paper's rule (§5): "In cases where both methods provide
//! different results for the same hop, SNMPv3-based fingerprinting
//! takes precedence." TTL fingerprinting contributes the
//! Cisco-or-Huawei class (the only one useful for SR range matching);
//! SNMPv3 contributes exact vendors.

use crate::snmp::SnmpDataset;
use crate::ttl::{ping_echo_ttl, ttl_class, TtlClass, TtlSignature};
use arest_obs::Counter;
use arest_simnet::Network;
use arest_topo::ids::RouterId;
use arest_topo::vendor::Vendor;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::LazyLock;

/// Cached handles into the global `arest-obs` registry (free when
/// observability is disabled). Shared with [`crate::cache`], which
/// reproduces the same per-address fusion and must count into the
/// same series.
pub(crate) struct Metrics {
    /// `fingerprint.addresses` — addresses submitted for fusion.
    pub(crate) addresses: Counter,
    /// `fingerprint.snmp_hits` — resolved exactly from the SNMPv3
    /// dataset (takes precedence, §5).
    pub(crate) snmp_hits: Counter,
    /// `fingerprint.ttl_hits` — resolved to Cisco-or-Huawei by the TTL
    /// signature.
    pub(crate) ttl_hits: Counter,
    /// `fingerprint.unresolved` — addresses yielding no evidence.
    pub(crate) unresolved: Counter,
}

pub(crate) static METRICS: LazyLock<Metrics> = LazyLock::new(|| {
    let registry = arest_obs::global();
    Metrics {
        addresses: registry.counter("fingerprint.addresses"),
        snmp_hits: registry.counter("fingerprint.snmp_hits"),
        ttl_hits: registry.counter("fingerprint.ttl_hits"),
        unresolved: registry.counter("fingerprint.unresolved"),
    }
});

/// Which method produced a fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FingerprintSource {
    /// TTL-based signature.
    Ttl,
    /// SNMPv3 dataset.
    Snmp,
}

/// Vendor knowledge attached to one hop address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VendorEvidence {
    /// Exact vendor (SNMPv3).
    Exact(Vendor),
    /// Cisco or Huawei, indistinguishable (TTL signature 255/255);
    /// vendor-range flags must use the SRGB intersection.
    CiscoOrHuawei,
}

impl VendorEvidence {
    /// The exact vendor, when known.
    pub fn exact(&self) -> Option<Vendor> {
        match self {
            VendorEvidence::Exact(v) => Some(*v),
            VendorEvidence::CiscoOrHuawei => None,
        }
    }
}

/// Human-readable verdict, used by detection provenance chains:
/// `Cisco` for an exact match, `Cisco|Huawei` for the ambiguous TTL
/// signature.
impl std::fmt::Display for VendorEvidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VendorEvidence::Exact(v) => write!(f, "{v}"),
            VendorEvidence::CiscoOrHuawei => write!(f, "Cisco|Huawei"),
        }
    }
}

/// The TTL half of the fusion rule, as a pure function of the two
/// observed reply TTLs: `Some(CiscoOrHuawei)` for the `(255, 255)`
/// class, `None` for every other class (no published default SRGB, so
/// no SR-range knowledge). Shared between the batch API below and the
/// memoizing [`crate::cache::FingerprintCache`].
pub fn ttl_evidence(echo_reply_ttl: u8, te_reply_ttl: u8) -> Option<VendorEvidence> {
    let signature = TtlSignature::from_observed(echo_reply_ttl, te_reply_ttl);
    (ttl_class(signature) == TtlClass::CiscoOrHuawei).then_some(VendorEvidence::CiscoOrHuawei)
}

/// Fingerprints a set of addresses.
///
/// `te_reply_ttls` carries, per address, the reply IP TTL of a
/// time-exceeded message already observed in traceroute (the second
/// signature component); addresses are additionally pinged from the
/// vantage point for the echo component. Returns both the evidence
/// and the method that produced it.
pub fn fingerprint_addresses(
    net: &Network,
    entry: RouterId,
    src: Ipv4Addr,
    addrs: &[Ipv4Addr],
    te_reply_ttls: &HashMap<Ipv4Addr, u8>,
    snmp: &SnmpDataset,
) -> HashMap<Ipv4Addr, (VendorEvidence, FingerprintSource)> {
    let metrics = &*METRICS;
    metrics.addresses.add(addrs.len() as u64);
    let mut out = HashMap::new();
    for &addr in addrs {
        // SNMPv3 takes precedence.
        if let Some(vendor) = snmp.lookup(addr) {
            out.insert(addr, (VendorEvidence::Exact(vendor), FingerprintSource::Snmp));
            metrics.snmp_hits.inc();
            continue;
        }
        // TTL signature needs both an echo reply and a TE observation.
        let Some(&te_ttl) = te_reply_ttls.get(&addr) else {
            metrics.unresolved.inc();
            continue;
        };
        let Some(echo_ttl) = ping_echo_ttl(net, entry, src, addr) else {
            metrics.unresolved.inc();
            continue;
        };
        if let Some(evidence) = ttl_evidence(echo_ttl, te_ttl) {
            out.insert(addr, (evidence, FingerprintSource::Ttl));
            metrics.ttl_hits.inc();
        } else {
            metrics.unresolved.inc();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use arest_simnet::plane::Route;

    #[test]
    fn vendor_evidence_displays_the_verdict_provenance_uses() {
        assert_eq!(VendorEvidence::Exact(Vendor::Cisco).to_string(), "Cisco");
        assert_eq!(VendorEvidence::Exact(Vendor::Juniper).to_string(), "Juniper");
        assert_eq!(VendorEvidence::CiscoOrHuawei.to_string(), "Cisco|Huawei");
    }

    use arest_topo::graph::Topology;
    use arest_topo::ids::AsNumber;
    use arest_topo::prefix::Prefix;

    /// R0(Cisco) — R1(Juniper) — R2(Huawei); probes enter at R0.
    fn testbed() -> (Network, Vec<Ipv4Addr>) {
        let mut topo = Topology::new();
        let asn = AsNumber(65_300);
        let vendors = [Vendor::Cisco, Vendor::Juniper, Vendor::Huawei];
        let routers: Vec<RouterId> = vendors
            .iter()
            .enumerate()
            .map(|(i, v)| {
                topo.add_router(format!("f{i}"), asn, *v, Ipv4Addr::new(10, 255, 30, (i + 1) as u8))
            })
            .collect();
        for i in 0..2u8 {
            topo.add_link(
                routers[i as usize],
                Ipv4Addr::new(10, 30, i, 1),
                routers[i as usize + 1],
                Ipv4Addr::new(10, 30, i, 2),
                1,
            );
        }
        let loopbacks: Vec<Ipv4Addr> = routers.iter().map(|&r| topo.router(r).loopback).collect();
        let mut net = Network::new(topo);
        // Static routes down the chain to every loopback.
        let spf = arest_topo::spf::DomainSpf::for_members(net.topo(), &routers);
        for &from in &routers {
            for (&to, &lo) in routers.iter().zip(&loopbacks) {
                if from == to {
                    continue;
                }
                if let Some((out_iface, next_router)) = spf.next_hop(from, to) {
                    net.plane_mut(from)
                        .install_route(Prefix::host(lo), Route { out_iface, next_router });
                }
            }
        }
        (net, loopbacks)
    }

    #[test]
    fn ttl_method_identifies_cisco_huawei_only() {
        let (net, lo) = testbed();
        let src = Ipv4Addr::new(192, 0, 2, 9);
        // Pretend traceroute observed TE replies from all three.
        let te: HashMap<Ipv4Addr, u8> = lo.iter().map(|&a| (a, 250)).collect();
        let got = fingerprint_addresses(&net, RouterId(0), src, &lo, &te, &SnmpDataset::new());
        assert_eq!(got.get(&lo[0]), Some(&(VendorEvidence::CiscoOrHuawei, FingerprintSource::Ttl)));
        assert_eq!(got.get(&lo[1]), None, "Juniper TTL class carries no range evidence");
        assert_eq!(
            got.get(&lo[2]),
            Some(&(VendorEvidence::CiscoOrHuawei, FingerprintSource::Ttl)),
            "Huawei is indistinguishable from Cisco by TTL"
        );
    }

    #[test]
    fn snmp_takes_precedence_and_is_exact() {
        let (net, lo) = testbed();
        let src = Ipv4Addr::new(192, 0, 2, 9);
        let te: HashMap<Ipv4Addr, u8> = lo.iter().map(|&a| (a, 250)).collect();
        let mut snmp = SnmpDataset::new();
        snmp.insert(lo[2], Vendor::Huawei);
        snmp.insert(lo[1], Vendor::Juniper);
        let got = fingerprint_addresses(&net, RouterId(0), src, &lo, &te, &snmp);
        assert_eq!(
            got.get(&lo[2]),
            Some(&(VendorEvidence::Exact(Vendor::Huawei), FingerprintSource::Snmp))
        );
        assert_eq!(
            got.get(&lo[1]),
            Some(&(VendorEvidence::Exact(Vendor::Juniper), FingerprintSource::Snmp))
        );
        assert_eq!(got[&lo[2]].0.exact(), Some(Vendor::Huawei));
        assert_eq!(got[&lo[0]].0.exact(), None);
    }

    #[test]
    fn no_te_observation_means_no_ttl_fingerprint() {
        let (net, lo) = testbed();
        let src = Ipv4Addr::new(192, 0, 2, 9);
        let got = fingerprint_addresses(
            &net,
            RouterId(0),
            src,
            &lo,
            &HashMap::new(),
            &SnmpDataset::new(),
        );
        assert!(got.is_empty(), "the signature needs both components");
    }

    #[test]
    fn silent_echo_means_no_ttl_fingerprint() {
        let (mut net, lo) = testbed();
        net.plane_mut(RouterId(0)).answers_echo = false;
        let src = Ipv4Addr::new(192, 0, 2, 9);
        let te: HashMap<Ipv4Addr, u8> = [(lo[0], 250)].into();
        let got = fingerprint_addresses(&net, RouterId(0), src, &lo[..1], &te, &SnmpDataset::new());
        assert!(got.is_empty());
    }
}
