//! TTL-based router signatures (Vanaubel et al.).
//!
//! A router's ICMP implementation initializes the IP TTL of the
//! messages it *originates* from a vendor-characteristic constant.
//! Observing an echo reply and a time-exceeded message from the same
//! address therefore yields a signature `(init(echo), init(te))` that
//! partitions routers into coarse vendor classes.

use arest_simnet::packet::{ProbeReply, ProbeSpec, TransportPayload};
use arest_simnet::Network;
use arest_topo::ids::RouterId;
use std::net::Ipv4Addr;

/// Infers the initial TTL a reply started from (64, 128, or 255).
pub fn initial_ttl_guess(observed: u8) -> u8 {
    if observed <= 64 {
        64
    } else if observed <= 128 {
        128
    } else {
        255
    }
}

/// A `(echo-reply initial TTL, time-exceeded initial TTL)` signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TtlSignature {
    /// Inferred initial TTL of echo replies.
    pub echo_reply: u8,
    /// Inferred initial TTL of time-exceeded messages.
    pub time_exceeded: u8,
}

impl TtlSignature {
    /// Builds a signature from raw observed reply TTLs.
    pub fn from_observed(echo_reply: u8, time_exceeded: u8) -> TtlSignature {
        TtlSignature {
            echo_reply: initial_ttl_guess(echo_reply),
            time_exceeded: initial_ttl_guess(time_exceeded),
        }
    }
}

/// The vendor classes TTL signatures can distinguish.
///
/// The crucial limitation (paper §5): Cisco and Huawei share
/// `(255, 255)`, so TTL-derived vendor-range flags must match the
/// intersection of their SR label spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TtlClass {
    /// `(255, 255)` — Cisco or Huawei, indistinguishable.
    CiscoOrHuawei,
    /// `(64, 255)` — Juniper-like (Nokia shares this signature).
    JuniperLike,
    /// `(255, 64)` — Brocade-like platforms.
    BrocadeLike,
    /// `(64, 64)` — host-stack platforms (Linux, MikroTik, Arista).
    HostLike,
    /// Anything else.
    Other,
}

/// Classifies a signature.
pub fn ttl_class(signature: TtlSignature) -> TtlClass {
    match (signature.echo_reply, signature.time_exceeded) {
        (255, 255) => TtlClass::CiscoOrHuawei,
        (64, 255) => TtlClass::JuniperLike,
        (255, 64) => TtlClass::BrocadeLike,
        (64, 64) => TtlClass::HostLike,
        _ => TtlClass::Other,
    }
}

/// Pings `target` from a vantage point and returns the observed echo
/// reply TTL, if the target answers.
pub fn ping_echo_ttl(
    net: &Network,
    entry: RouterId,
    src: Ipv4Addr,
    target: Ipv4Addr,
) -> Option<u8> {
    let spec = ProbeSpec {
        entry,
        src,
        dst: target,
        ttl: 64,
        transport: TransportPayload::Echo { ident: 0xf1f0, seq: 1 },
    };
    match net.probe(&spec) {
        ProbeReply::EchoReply { reply_ttl, .. } => Some(reply_ttl),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arest_topo::vendor::Vendor;

    #[test]
    fn vendor_constants_map_to_expected_classes() {
        for (vendor, expected) in [
            (Vendor::Cisco, TtlClass::CiscoOrHuawei),
            (Vendor::Huawei, TtlClass::CiscoOrHuawei),
            (Vendor::Juniper, TtlClass::JuniperLike),
            (Vendor::Nokia, TtlClass::JuniperLike),
            (Vendor::Brocade, TtlClass::BrocadeLike),
            (Vendor::Linux, TtlClass::HostLike),
            (Vendor::Arista, TtlClass::HostLike),
        ] {
            let sig = TtlSignature {
                echo_reply: vendor.echo_reply_initial_ttl(),
                time_exceeded: vendor.time_exceeded_initial_ttl(),
            };
            assert_eq!(ttl_class(sig), expected, "{vendor}");
        }
    }

    #[test]
    fn signatures_are_inferred_from_decremented_observations() {
        // A Cisco reply 12 hops away arrives with TTLs 243/243.
        let sig = TtlSignature::from_observed(243, 243);
        assert_eq!(sig, TtlSignature { echo_reply: 255, time_exceeded: 255 });
        assert_eq!(ttl_class(sig), TtlClass::CiscoOrHuawei);
        // A Juniper reply 5 hops away: echo 59, te 250.
        let sig = TtlSignature::from_observed(59, 250);
        assert_eq!(ttl_class(sig), TtlClass::JuniperLike);
    }

    #[test]
    fn unusual_signature_is_other() {
        assert_eq!(
            ttl_class(TtlSignature { echo_reply: 128, time_exceeded: 255 }),
            TtlClass::Other
        );
    }
}
