//! Exhaustive model check of the fingerprint cache's memoization
//! under racing lookups (`cargo test -p arest-fingerprint --features
//! model-check`).

#![cfg(feature = "model-check")]

use arest_conc::model::Model;
use arest_fingerprint::cache::FingerprintCache;
use arest_simnet::plane::Route;
use arest_simnet::Network;
use arest_topo::graph::Topology;
use arest_topo::ids::{AsNumber, RouterId};
use arest_topo::prefix::Prefix;
use arest_topo::vendor::Vendor;
use std::net::Ipv4Addr;

/// R0(Cisco) — R1(Juniper); probes enter at R0.
fn testbed() -> (Network, Vec<Ipv4Addr>) {
    let mut topo = Topology::new();
    let asn = AsNumber(65_311);
    let routers: Vec<RouterId> = [Vendor::Cisco, Vendor::Juniper]
        .iter()
        .enumerate()
        .map(|(i, v)| {
            topo.add_router(format!("m{i}"), asn, *v, Ipv4Addr::new(10, 255, 32, (i + 1) as u8))
        })
        .collect();
    topo.add_link(
        routers[0],
        Ipv4Addr::new(10, 32, 0, 1),
        routers[1],
        Ipv4Addr::new(10, 32, 0, 2),
        1,
    );
    let loopbacks: Vec<Ipv4Addr> = routers.iter().map(|&r| topo.router(r).loopback).collect();
    let mut net = Network::new(topo);
    let spf = arest_topo::spf::DomainSpf::for_members(net.topo(), &routers);
    for &from in &routers {
        for (&to, &lo) in routers.iter().zip(&loopbacks) {
            if from == to {
                continue;
            }
            if let Some((out_iface, next_router)) = spf.next_hop(from, to) {
                net.plane_mut(from)
                    .install_route(Prefix::host(lo), Route { out_iface, next_router });
            }
        }
    }
    (net, loopbacks)
}

/// Invariant: two threads racing `echo_ttl` on the same address agree
/// on the answer and the probe is memoized exactly once — the write
/// lock held across the probe admits no double-probe interleaving.
#[test]
fn model_racing_lookups_probe_once_and_agree() {
    let report = Model::default().check(|| {
        let (net, lo) = testbed();
        let cache = FingerprintCache::new(&net, RouterId(0), Ipv4Addr::new(192, 0, 2, 9));
        let addr = lo[1];
        let mut results = (None, None);
        arest_conc::thread::scope(|s| {
            let racer = s.spawn(|| cache.echo_ttl(addr));
            results.0 = Some(cache.echo_ttl(addr));
            results.1 = Some(racer.join().expect("racing lookup"));
        });
        let (mine, theirs) = (results.0.unwrap(), results.1.unwrap());
        assert!(mine.is_some(), "the probed address must answer");
        assert_eq!(mine, theirs, "racing lookups must agree");
        assert_eq!(cache.memoized(), 1, "exactly one memoized probe");
    });
    assert!(report.complete, "schedule space not exhausted in {} runs", report.runs);
}

/// Invariant: lookups racing on *different* shards stay independent —
/// both memoize, neither blocks the other into a deadlock, and the
/// cache ends with both entries whatever the interleaving.
#[test]
fn model_distinct_shards_memoize_independently() {
    let report = Model::default().check(|| {
        let (net, lo) = testbed();
        let cache = FingerprintCache::new(&net, RouterId(0), Ipv4Addr::new(192, 0, 2, 9));
        arest_conc::thread::scope(|s| {
            let c = &cache;
            let other = lo[1];
            s.spawn(move || c.echo_ttl(other));
            cache.echo_ttl(lo[0]);
        });
        assert_eq!(cache.memoized(), 2, "both addresses memoized");
    });
    assert!(report.complete, "schedule space not exhausted in {} runs", report.runs);
}
