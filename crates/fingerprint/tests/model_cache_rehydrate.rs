//! Exhaustive model check of cache rehydration racing live lookups
//! (`cargo test -p arest-fingerprint --features model-check --test
//! model_cache_rehydrate`).
//!
//! An incremental run rehydrates the previous campaign's sidecar
//! entries while streaming workers are already probing (`DESIGN.md`
//! §14). The safety claim: however a `rehydrate` interleaves with a
//! racing `echo_ttl` on the same address, the address is probed **at
//! most once** — either the import lands first and the lookup hits,
//! or the lookup probes first and the import is dropped as stale.
//! Never both, and the answer is the same either way.

#![cfg(feature = "model-check")]

use arest_conc::model::Model;
use arest_fingerprint::cache::FingerprintCache;
use arest_simnet::plane::Route;
use arest_simnet::Network;
use arest_topo::graph::Topology;
use arest_topo::ids::{AsNumber, RouterId};
use arest_topo::prefix::Prefix;
use arest_topo::vendor::Vendor;
use std::net::Ipv4Addr;

/// R0(Cisco) — R1(Juniper); probes enter at R0.
fn testbed() -> (Network, Vec<Ipv4Addr>) {
    let mut topo = Topology::new();
    let asn = AsNumber(65_313);
    let routers: Vec<RouterId> = [Vendor::Cisco, Vendor::Juniper]
        .iter()
        .enumerate()
        .map(|(i, v)| {
            topo.add_router(format!("r{i}"), asn, *v, Ipv4Addr::new(10, 255, 34, (i + 1) as u8))
        })
        .collect();
    topo.add_link(
        routers[0],
        Ipv4Addr::new(10, 34, 0, 1),
        routers[1],
        Ipv4Addr::new(10, 34, 0, 2),
        1,
    );
    let loopbacks: Vec<Ipv4Addr> = routers.iter().map(|&r| topo.router(r).loopback).collect();
    let mut net = Network::new(topo);
    let spf = arest_topo::spf::DomainSpf::for_members(net.topo(), &routers);
    for &from in &routers {
        for (&to, &lo) in routers.iter().zip(&loopbacks) {
            if from == to {
                continue;
            }
            if let Some((out_iface, next_router)) = spf.next_hop(from, to) {
                net.plane_mut(from)
                    .install_route(Prefix::host(lo), Route { out_iface, next_router });
            }
        }
    }
    (net, loopbacks)
}

/// Invariant: a rehydration racing a live lookup on the same address
/// resolves to exactly one probe-or-import per address — `rehydrated +
/// misses == 1` under every interleaving — and the lookup's answer
/// always equals the exported (ground-truth) TTL.
#[test]
fn model_rehydrate_racing_a_lookup_never_double_probes() {
    // The exported sidecar entry, from a warm cache outside the model
    // (its value IS what a live probe would answer, as in a real run).
    let (net, lo) = testbed();
    let src = Ipv4Addr::new(192, 0, 2, 9);
    let donor = FingerprintCache::new(&net, RouterId(0), src);
    let addr = lo[1];
    let expect = donor.echo_ttl(addr);
    assert!(expect.is_some(), "the probed address must answer");
    let exported = donor.export();
    assert_eq!(exported.len(), 1);

    let report = Model::default().check(|| {
        let (net, _) = testbed();
        let cache = FingerprintCache::new(&net, RouterId(0), src);
        let mut outcome = (None, None);
        arest_conc::thread::scope(|s| {
            let c = &cache;
            let entries = &exported;
            let importer = s.spawn(move || c.rehydrate(entries));
            outcome.0 = Some(cache.echo_ttl(addr));
            outcome.1 = Some(importer.join().expect("rehydrating importer"));
        });
        let (answer, stats) = (outcome.0.unwrap(), outcome.1.unwrap());
        assert_eq!(answer, expect, "rehydrated and probed answers must agree");
        // Either the import won (lookup was a pure hit: 0 probes) or
        // the probe won (import dropped as stale) — never both.
        let probed = usize::from(stats.rehydrated == 0);
        assert_eq!(stats.rehydrated + probed, 1, "exactly one probe-or-import per address");
        assert_eq!(stats.rehydrated + stats.stale, 1, "every entry is accounted for");
        assert_eq!(cache.memoized(), 1, "one memoized entry whichever side won");
    });
    assert!(report.complete, "schedule space not exhausted in {} runs", report.runs);
}

/// Invariant: rehydration racing a batch of lookups across *different*
/// shards imports every unprobed address and never deadlocks — the
/// per-shard write locks are taken one entry at a time.
#[test]
fn model_rehydrate_racing_a_batch_converges_per_shard() {
    let (net, lo) = testbed();
    let src = Ipv4Addr::new(192, 0, 2, 9);
    let donor = FingerprintCache::new(&net, RouterId(0), src);
    for &a in &lo {
        donor.echo_ttl(a);
    }
    let exported = donor.export();
    assert_eq!(exported.len(), lo.len());

    let report = Model::default().check(|| {
        let (net, lo) = testbed();
        let cache = FingerprintCache::new(&net, RouterId(0), src);
        let mut stats = None;
        arest_conc::thread::scope(|s| {
            let c = &cache;
            let entries = &exported;
            let importer = s.spawn(move || c.rehydrate(entries));
            // One live lookup racing the import stream.
            c.echo_ttl(lo[0]);
            stats = Some(importer.join().expect("rehydrating importer"));
        });
        let stats = stats.unwrap();
        assert_eq!(
            stats.rehydrated + stats.stale,
            exported.len(),
            "every sidecar entry resolves to imported or stale"
        );
        // The racing lookup's address may have been probed or
        // imported; every other address must have been imported.
        assert!(stats.rehydrated >= exported.len() - 1);
        assert_eq!(cache.memoized(), lo.len(), "the cache converges on the full address set");
    });
    assert!(report.complete, "schedule space not exhausted in {} runs", report.runs);
}
