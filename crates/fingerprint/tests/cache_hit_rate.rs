//! Coverage for the shared fingerprint cache: cross-shard determinism
//! under concurrent lookups, and the memoization hit rate asserted
//! through the `fingerprint.cache.*` obs counters.
//!
//! This file holds a single test function in its own process on
//! purpose: it enables the process-global registry (the cache's
//! counters live there), which would race other tests in the binary.

use arest_fingerprint::cache::FingerprintCache;
use arest_fingerprint::snmp::SnmpDataset;
use arest_simnet::plane::Route;
use arest_simnet::Network;
use arest_topo::graph::Topology;
use arest_topo::ids::{AsNumber, RouterId};
use arest_topo::prefix::Prefix;
use arest_topo::vendor::Vendor;
use std::net::Ipv4Addr;

/// An 8-router chain whose consecutive loopbacks land on 8 distinct
/// cache shards; probes enter at R0.
fn testbed() -> (Network, Vec<Ipv4Addr>) {
    let mut topo = Topology::new();
    let asn = AsNumber(65_312);
    let vendors = [Vendor::Cisco, Vendor::Juniper, Vendor::Huawei];
    let routers: Vec<RouterId> = (0..8)
        .map(|i| {
            topo.add_router(
                format!("h{i}"),
                asn,
                vendors[i % vendors.len()],
                Ipv4Addr::new(10, 255, 33, (i + 1) as u8),
            )
        })
        .collect();
    for i in 0..7u8 {
        topo.add_link(
            routers[i as usize],
            Ipv4Addr::new(10, 33, i, 1),
            routers[i as usize + 1],
            Ipv4Addr::new(10, 33, i, 2),
            1,
        );
    }
    let loopbacks: Vec<Ipv4Addr> = routers.iter().map(|&r| topo.router(r).loopback).collect();
    let mut net = Network::new(topo);
    let spf = arest_topo::spf::DomainSpf::for_members(net.topo(), &routers);
    for &from in &routers {
        for (&to, &lo) in routers.iter().zip(&loopbacks) {
            if from == to {
                continue;
            }
            if let Some((out_iface, next_router)) = spf.next_hop(from, to) {
                net.plane_mut(from)
                    .install_route(Prefix::host(lo), Route { out_iface, next_router });
            }
        }
    }
    (net, loopbacks)
}

#[test]
fn concurrent_lookups_are_shard_deterministic_and_hit_rate_is_exact() {
    let registry = arest_obs::global();
    registry.set_enabled(true);

    let (net, lo) = testbed();
    let src = Ipv4Addr::new(192, 0, 2, 9);

    // Serial baseline on its own cache: the ground truth per address.
    let baseline_cache = FingerprintCache::new(&net, RouterId(0), src);
    let baseline: Vec<Option<u8>> = lo.iter().map(|&a| baseline_cache.echo_ttl(a)).collect();
    assert!(baseline.iter().all(Option::is_some), "every chained loopback answers");

    let before = registry.snapshot();

    // Concurrent phase: 4 threads × 3 rounds over all 8 addresses,
    // every lookup racing across the shards.
    const THREADS: u64 = 4;
    const ROUNDS: u64 = 3;
    let cache = FingerprintCache::new(&net, RouterId(0), src);
    arest_conc::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for _ in 0..ROUNDS {
                    for (&addr, &expect) in lo.iter().zip(&baseline) {
                        assert_eq!(
                            cache.echo_ttl(addr),
                            expect,
                            "concurrent lookup must match the serial baseline"
                        );
                    }
                }
            });
        }
    });
    assert_eq!(cache.memoized(), lo.len(), "one memoized probe per distinct address");

    // Hit-rate bookkeeping is schedule-independent: exactly one miss
    // per distinct address (the write lock held across the probe
    // guarantees it), everything else a hit.
    let after = registry.snapshot();
    let delta = after.diff(&before);
    let total = THREADS * ROUNDS * lo.len() as u64;
    let distinct = lo.len() as u64;
    assert_eq!(delta.counters.get("fingerprint.cache.misses"), Some(&distinct));
    assert_eq!(delta.counters.get("fingerprint.cache.hits"), Some(&(total - distinct)));

    // The memoized answers double as evidence inputs: a full-fusion
    // pass over the warm cache is all hits, no new probes.
    let snmp = SnmpDataset::new();
    for &addr in &lo {
        let _ = cache.evidence(addr, 250, &snmp);
    }
    assert_eq!(cache.memoized(), lo.len(), "evidence on a warm cache probes nothing new");

    // Persistence round trip, as an incremental run performs it: the
    // finished cache exports its entries, a fresh cache (a new
    // campaign process) rehydrates them, and a full pass over the
    // rehydrated cache probes nothing — all hits, zero misses.
    let exported = cache.export();
    assert_eq!(exported.len(), lo.len());

    let before = registry.snapshot();
    let warm = FingerprintCache::new(&net, RouterId(0), src);
    let stats = warm.rehydrate(&exported);
    assert_eq!(stats.rehydrated, lo.len(), "every exported probe seeds the new cache");
    assert_eq!(stats.stale, 0);
    for (&addr, &expect) in lo.iter().zip(&baseline) {
        assert_eq!(warm.echo_ttl(addr), expect, "rehydrated answer must match a live probe");
    }
    let delta = registry.snapshot().diff(&before);
    assert_eq!(delta.counters.get("fingerprint.cache.rehydrated"), Some(&distinct));
    assert_eq!(delta.counters.get("fingerprint.cache.misses"), Some(&0), "no probe ran");
    assert_eq!(delta.counters.get("fingerprint.cache.hits"), Some(&distinct));

    // Rehydrating over an already-occupied cache keeps the live
    // entries and counts the imports as stale instead.
    let stats = warm.rehydrate(&exported);
    assert_eq!(stats.rehydrated, 0);
    assert_eq!(stats.stale, lo.len());
}
