//! The AReST segment detector (§4).
//!
//! Walks an augmented trace and extracts SR-MPLS *segments*:
//! contiguous hop spans that raised one of the five flags. Sequence
//! flags (CVR/CO) are matched first — a hop claimed by a sequence is
//! not re-flagged by the per-hop stack flags (LSVR/LVR/LSO).

use crate::flags::Flag;
use crate::model::{AugmentedHop, AugmentedTrace};
use crate::ranges::label_in_sr_range;
use arest_fingerprint::combined::VendorEvidence;
use arest_obs::{Counter, SpanContext, Tracer};
use arest_wire::mpls::Label;
use std::fmt::Write as _;
use std::sync::LazyLock;

/// Cached handles into the global `arest-obs` registry: traces walked
/// and per-flag segment detections (free when observability is off).
pub(crate) struct ObsMetrics {
    /// `core.detect.traces` — traces run through the detector.
    pub(crate) traces: Counter,
    /// `core.detect.segments` — segments detected across all flags.
    pub(crate) segments: Counter,
    /// `core.detect.flag.{cvr,co,lsvr,lvr,lso}`, indexed by
    /// [`flag_slot`].
    pub(crate) flags: [Counter; 5],
}

/// The global registry's span tracer (inert while `AREST_OBS` is
/// off). Shared with the columnar detector in [`crate::columnar`].
pub(crate) static TRACER: LazyLock<Tracer> = LazyLock::new(|| arest_obs::global().tracer());

pub(crate) static OBS: LazyLock<ObsMetrics> = LazyLock::new(|| {
    let registry = arest_obs::global();
    ObsMetrics {
        traces: registry.counter("core.detect.traces"),
        segments: registry.counter("core.detect.segments"),
        flags: [
            registry.counter("core.detect.flag.cvr"),
            registry.counter("core.detect.flag.co"),
            registry.counter("core.detect.flag.lsvr"),
            registry.counter("core.detect.flag.lvr"),
            registry.counter("core.detect.flag.lso"),
        ],
    }
});

pub(crate) fn flag_slot(flag: Flag) -> usize {
    match flag {
        Flag::Cvr => 0,
        Flag::Co => 1,
        Flag::Lsvr => 2,
        Flag::Lvr => 3,
        Flag::Lso => 4,
    }
}

/// Detector knobs. The defaults follow the paper; the alternatives
/// exist for the ablation experiments.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Whether label sequences may match on a shared decimal suffix
    /// (handles neighbours with different SRGB bases, §4.1 footnote).
    pub suffix_matching: bool,
    /// Minimum number of hops in a CVR/CO sequence.
    pub min_sequence_len: usize,
    /// Whether RFC 6790 entropy pairs (an ELI special-purpose label
    /// and the entropy label under it) are excluded when measuring
    /// stack depth. Entropy labels exist purely for load balancing —
    /// they say nothing about steering — so counting them would let
    /// plain LDP + entropy masquerade as the multi-label stacks the
    /// LSVR/LSO flags key on. An implementation refinement over the
    /// paper, on by default; disable to reproduce the raw behaviour.
    pub ignore_entropy_labels: bool,
}

impl Default for DetectorConfig {
    fn default() -> DetectorConfig {
        DetectorConfig { suffix_matching: true, min_sequence_len: 2, ignore_entropy_labels: true }
    }
}

/// Stack depth as the detector sees it: everything from the first
/// RFC 6790 Entropy Label Indicator downward is load-balancing
/// plumbing, not steering state.
fn effective_depth(hop: &AugmentedHop, config: &DetectorConfig) -> usize {
    let Some(stack) = &hop.stack else { return 0 };
    if !config.ignore_entropy_labels {
        return stack.depth();
    }
    stack
        .entries()
        .iter()
        .position(|lse| lse.label == Label::ENTROPY_INDICATOR)
        .unwrap_or(stack.depth())
}

/// The evidence chain behind one detection: which hop triggered it,
/// what the detector consulted on the way, and which inputs tipped the
/// flag decision. Every [`DetectedSegment`] carries one, so a flag can
/// always be traced back to the probes and fingerprints that caused it
/// (rendered into `RUN_REPORT_provenance.txt` and recorded as span
/// fields by [`detect_segments_spanned`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Index (in `trace.hops`) of the hop that triggered the
    /// detection: the first hop of a CVR/CO sequence, the flagged hop
    /// itself for the per-hop stack flags.
    pub trigger_hop: usize,
    /// Length of the matched label run (1 for per-hop flags).
    pub run_len: usize,
    /// Distinct replying addresses across the segment (the ≥2
    /// requirement that separates a sequence from a no-PHP egress
    /// quoting itself twice).
    pub distinct_addrs: usize,
    /// Label-stack entries the detector examined: one top label per
    /// sequence hop, the full visible stack for per-hop flags.
    pub lses_consulted: usize,
    /// Stack depth after RFC 6790 entropy-pair exclusion on the
    /// trigger hop — the depth the LSVR/LVR/LSO split keyed on.
    pub effective_depth: usize,
    /// The fingerprint verdict consulted: for CVR, the verdict of the
    /// hop whose own label confirmed a vendor SR range; for CO, the
    /// first fingerprinted hop in the sequence (consulted but not
    /// confirming); for per-hop flags, the hop's own verdict.
    pub fingerprint: Option<VendorEvidence>,
    /// Whether the consulted fingerprint mapped the active label into
    /// its vendor's SR range (the CVR-vs-CO and LSVR/LVR-vs-LSO
    /// discriminator).
    pub label_in_vendor_range: bool,
    /// Whether the sequence needed decimal-suffix matching at any
    /// point (always `false` for per-hop flags).
    pub suffix_matched: bool,
}

impl Provenance {
    /// One-line evidence chain, `key=value` pairs in causal order.
    #[must_use]
    pub fn chain(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "trigger_hop={} run_len={} distinct_addrs={} lses_consulted={} effective_depth={}",
            self.trigger_hop,
            self.run_len,
            self.distinct_addrs,
            self.lses_consulted,
            self.effective_depth,
        );
        match self.fingerprint {
            Some(evidence) => {
                let _ = write!(out, " fingerprint={evidence}");
            }
            None => out.push_str(" fingerprint=none"),
        }
        let _ = write!(
            out,
            " in_vendor_range={} suffix_matched={}",
            self.label_in_vendor_range, self.suffix_matched
        );
        out
    }
}

/// One detected SR-MPLS segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectedSegment {
    /// The flag that fired.
    pub flag: Flag,
    /// Index of the first hop of the segment in `trace.hops`.
    pub start: usize,
    /// Index of the last hop (inclusive).
    pub end: usize,
    /// The active label that triggered the flag (the first hop's top
    /// label for sequences).
    pub label: Label,
    /// Whether the sequence needed suffix-based matching at any point
    /// (always `false` for non-sequence flags).
    pub suffix_based: bool,
    /// The evidence chain that produced this detection.
    pub provenance: Provenance,
}

impl DetectedSegment {
    /// Number of hops in the segment.
    pub fn hop_count(&self) -> usize {
        self.end - self.start + 1
    }
}

/// Runs the detector over one trace.
pub fn detect_segments(trace: &AugmentedTrace, config: &DetectorConfig) -> Vec<DetectedSegment> {
    detect_segments_spanned(trace, config, SpanContext::NONE)
}

/// [`detect_segments`] parented under an explicit span context: opens
/// a `core.detect.trace` span and records one `detection` field per
/// segment carrying its full [`Provenance`] chain.
pub fn detect_segments_spanned(
    trace: &AugmentedTrace,
    config: &DetectorConfig,
    parent: SpanContext,
) -> Vec<DetectedSegment> {
    let mut span = TRACER.span_with_parent("core.detect.trace", parent);
    let segments = detect_segments_inner(trace, config);
    if span.is_recording() {
        span.record("dst", trace.dst);
        span.record("segments", segments.len());
        for segment in &segments {
            span.record("detection", format!("{} {}", segment.flag, segment.provenance.chain()));
        }
    }
    segments
}

fn detect_segments_inner(trace: &AugmentedTrace, config: &DetectorConfig) -> Vec<DetectedSegment> {
    let hops = &trace.hops;
    let mut segments = Vec::new();
    let mut claimed = vec![false; hops.len()];

    // ---- Phase 1: label sequences (CVR / CO) ----
    let mut i = 0;
    while i < hops.len() {
        let Some(first_label) = hops[i].top_label() else {
            i += 1;
            continue;
        };
        let mut j = i;
        let mut prev_label = first_label;
        let mut suffix_based = false;
        while j + 1 < hops.len() {
            let Some(next_label) = hops[j + 1].top_label() else { break };
            if next_label == prev_label {
                j += 1;
                prev_label = next_label;
            } else if config.suffix_matching && next_label.suffix_matches(prev_label) {
                suffix_based = true;
                j += 1;
                prev_label = next_label;
            } else {
                break;
            }
        }
        let run_len = j - i + 1;
        // Label locality is per *router*: the same label quoted twice
        // by one address (e.g. a no-PHP egress occupying two TTL
        // slots) says nothing about SR. A sequence needs at least two
        // distinct replying addresses.
        let distinct_addrs = {
            let mut addrs: Vec<_> = hops[i..=j].iter().filter_map(|h| h.addr).collect();
            addrs.sort_unstable();
            addrs.dedup();
            addrs.len()
        };
        if run_len >= config.min_sequence_len && distinct_addrs >= 2 {
            // CVR needs at least one hop whose fingerprint maps its
            // own active label into a vendor SR range.
            let confirming_hop = (i..=j).find(|&k| {
                hops[k]
                    .evidence
                    .is_some_and(|e| hops[k].top_label().is_some_and(|l| label_in_sr_range(e, l)))
            });
            let flag = if confirming_hop.is_some() { Flag::Cvr } else { Flag::Co };
            // The verdict consulted: the confirming hop's for CVR,
            // otherwise the first fingerprinted hop in the sequence
            // (evidence seen, but not range-confirming).
            let fingerprint = confirming_hop
                .and_then(|k| hops[k].evidence)
                .or_else(|| hops[i..=j].iter().find_map(|h| h.evidence));
            segments.push(DetectedSegment {
                flag,
                start: i,
                end: j,
                label: first_label,
                suffix_based,
                provenance: Provenance {
                    trigger_hop: i,
                    run_len,
                    distinct_addrs,
                    // Sequence matching reads one top label per hop.
                    lses_consulted: run_len,
                    effective_depth: effective_depth(&hops[i], config),
                    fingerprint,
                    label_in_vendor_range: confirming_hop.is_some(),
                    suffix_matched: suffix_based,
                },
            });
            for claimed_slot in claimed.iter_mut().take(j + 1).skip(i) {
                *claimed_slot = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }

    // ---- Phase 2: per-hop stack flags (LSVR / LVR / LSO) ----
    for (idx, hop) in hops.iter().enumerate() {
        if claimed[idx] {
            continue;
        }
        let Some(label) = hop.top_label() else { continue };
        let depth = effective_depth(hop, config);
        if depth == 0 {
            // The visible stack is nothing but an entropy pair.
            continue;
        }
        let in_range = hop.evidence.is_some_and(|e| label_in_sr_range(e, label));
        let flag = if depth >= 2 {
            if in_range {
                Some(Flag::Lsvr)
            } else {
                Some(Flag::Lso)
            }
        } else if in_range {
            Some(Flag::Lvr)
        } else {
            // A lone label outside known ranges is indistinguishable
            // from classic MPLS — the stated false-negative case §6.3.
            None
        };
        if let Some(flag) = flag {
            segments.push(DetectedSegment {
                flag,
                start: idx,
                end: idx,
                label,
                suffix_based: false,
                provenance: Provenance {
                    trigger_hop: idx,
                    run_len: 1,
                    distinct_addrs: usize::from(hop.addr.is_some()),
                    // Per-hop flags examine the whole visible stack.
                    lses_consulted: hop.stack.as_ref().map_or(0, |s| s.depth()),
                    effective_depth: depth,
                    fingerprint: hop.evidence,
                    label_in_vendor_range: in_range,
                    suffix_matched: false,
                },
            });
        }
    }

    segments.sort_by_key(|s| (s.start, s.end));
    let obs = &*OBS;
    obs.traces.inc();
    obs.segments.add(segments.len() as u64);
    for segment in &segments {
        obs.flags[flag_slot(segment.flag)].inc();
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AugmentedHop;
    use arest_fingerprint::combined::VendorEvidence;
    use arest_topo::vendor::Vendor;
    use arest_wire::mpls::LabelStack;
    use std::net::Ipv4Addr;

    fn stack(labels: &[u32]) -> LabelStack {
        let labels: Vec<Label> = labels.iter().map(|&v| Label::new(v).unwrap()).collect();
        LabelStack::from_labels(&labels, 1)
    }

    fn hop(n: u8, labels: &[u32]) -> AugmentedHop {
        let addr = Ipv4Addr::new(10, 0, 0, n);
        if labels.is_empty() {
            AugmentedHop::ip(addr)
        } else {
            AugmentedHop::labeled(addr, stack(labels))
        }
    }

    fn with_evidence(mut h: AugmentedHop, e: VendorEvidence) -> AugmentedHop {
        h.evidence = Some(e);
        h
    }

    fn trace(hops: Vec<AugmentedHop>) -> AugmentedTrace {
        AugmentedTrace::new("vp", Ipv4Addr::new(203, 0, 113, 1), hops)
    }

    fn detect(hops: Vec<AugmentedHop>) -> Vec<DetectedSegment> {
        detect_segments(&trace(hops), &DetectorConfig::default())
    }

    // ---- The Fig. 6 walkthrough, flag by flag ----

    #[test]
    fn fig6_green_path_raises_cvr() {
        // 16,005 across P1..P3, with P1 fingerprinted Cisco.
        let segments = detect(vec![
            with_evidence(hop(1, &[16_005]), VendorEvidence::Exact(Vendor::Cisco)),
            hop(2, &[16_005]),
            hop(3, &[16_005]),
        ]);
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].flag, Flag::Cvr);
        assert_eq!((segments[0].start, segments[0].end), (0, 2));
        assert_eq!(segments[0].hop_count(), 3);
        assert!(!segments[0].suffix_based);
    }

    #[test]
    fn fig6_gray_path_raises_co() {
        // 17,005 across P4..P6, nobody fingerprinted: CO even though
        // the label value happens to sit inside Cisco's SRGB.
        let segments = detect(vec![hop(4, &[17_005]), hop(5, &[17_005]), hop(6, &[17_005])]);
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].flag, Flag::Co);
    }

    #[test]
    fn fig6_purple_path_raises_lsvr_and_excludes_neighbour() {
        // P7 (Cisco) quotes [20,000; 37,000]; P8 shows an unrelated
        // single label and must not join the segment.
        let segments = detect(vec![
            with_evidence(hop(7, &[20_000, 37_000]), VendorEvidence::Exact(Vendor::Cisco)),
            hop(8, &[345_129]),
        ]);
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].flag, Flag::Lsvr);
        assert_eq!((segments[0].start, segments[0].end), (0, 0));
    }

    #[test]
    fn fig6_blue_path_raises_lvr() {
        let segments =
            detect(vec![with_evidence(hop(9, &[16_105]), VendorEvidence::Exact(Vendor::Cisco))]);
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].flag, Flag::Lvr);
    }

    #[test]
    fn fig6_orange_path_raises_lso() {
        let segments = detect(vec![hop(10, &[345_100, 345_200])]);
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].flag, Flag::Lso);
    }

    // ---- Edge behaviour ----

    #[test]
    fn lone_unmapped_single_label_raises_nothing() {
        // The documented false-negative case (§6.3).
        assert!(detect(vec![hop(1, &[345_000])]).is_empty());
    }

    #[test]
    fn plain_ip_trace_raises_nothing() {
        assert!(detect(vec![hop(1, &[]), hop(2, &[]), hop(3, &[])]).is_empty());
    }

    #[test]
    fn suffix_matching_joins_differing_srgbs() {
        // The §4.1 footnote example: 16,005 → 13,005.
        let segments = detect(vec![hop(1, &[16_005]), hop(2, &[13_005])]);
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].flag, Flag::Co);
        assert!(segments[0].suffix_based);
    }

    #[test]
    fn suffix_matching_can_be_ablated() {
        let config = DetectorConfig { suffix_matching: false, ..Default::default() };
        let t = trace(vec![hop(1, &[16_005]), hop(2, &[13_005])]);
        let segments = detect_segments(&t, &config);
        // Without suffix matching the two lone labels fall through to
        // per-hop flags; neither carries evidence → nothing at all
        // for the 13,005 one, LVR impossible, so nothing fires.
        assert!(segments.iter().all(|s| s.flag != Flag::Co && s.flag != Flag::Cvr));
    }

    #[test]
    fn silent_hop_breaks_a_sequence() {
        let silent = AugmentedHop {
            addr: None,
            stack: None,
            evidence: None,
            revealed: false,
            quoted_ip_ttl: None,
            is_destination: false,
        };
        let segments = detect(vec![hop(1, &[17_000]), silent, hop(3, &[17_000])]);
        assert!(segments.iter().all(|s| s.flag != Flag::Co), "no sequence across a gap");
    }

    #[test]
    fn cvr_needs_the_evidence_hop_to_match_its_own_label() {
        // P2 is fingerprinted Juniper (no published ranges): even
        // though 16,005 is in Cisco's SRGB, no hop maps ITS label via
        // ITS vendor → CO, not CVR.
        let segments = detect(vec![
            hop(1, &[16_005]),
            with_evidence(hop(2, &[16_005]), VendorEvidence::Exact(Vendor::Juniper)),
        ]);
        assert_eq!(segments[0].flag, Flag::Co);
    }

    #[test]
    fn ttl_evidence_uses_intersection_for_cvr() {
        // TTL fingerprint (Cisco-or-Huawei) + label 40,000: inside
        // Huawei's SRGB but outside the intersection → CO.
        let segments = detect(vec![
            with_evidence(hop(1, &[40_000]), VendorEvidence::CiscoOrHuawei),
            hop(2, &[40_000]),
        ]);
        assert_eq!(segments[0].flag, Flag::Co);
        // Same shape with 16,005 (inside the intersection) → CVR.
        let segments = detect(vec![
            with_evidence(hop(1, &[16_005]), VendorEvidence::CiscoOrHuawei),
            hop(2, &[16_005]),
        ]);
        assert_eq!(segments[0].flag, Flag::Cvr);
    }

    #[test]
    fn sequence_consumes_hops_before_stack_flags() {
        // Three hops with deep stacks and the same top label: one CO
        // segment, not three LSO segments.
        let segments = detect(vec![
            hop(1, &[17_000, 99_000]),
            hop(2, &[17_000, 99_000]),
            hop(3, &[17_000, 99_000]),
        ]);
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].flag, Flag::Co);
    }

    #[test]
    fn mixed_trace_yields_multiple_segments_in_order() {
        let segments = detect(vec![
            hop(1, &[]),       // IP
            hop(2, &[17_005]), // CO (with next)
            hop(3, &[17_005]),
            hop(4, &[]),                                                     // IP
            hop(5, &[600_000, 700_000]),                                     // LSO
            with_evidence(hop(6, &[16_009]), VendorEvidence::CiscoOrHuawei), // LVR
        ]);
        let flags: Vec<Flag> = segments.iter().map(|s| s.flag).collect();
        assert_eq!(flags, vec![Flag::Co, Flag::Lso, Flag::Lvr]);
        assert!(segments.windows(2).all(|w| w[0].start <= w[1].start));
    }

    #[test]
    fn entropy_pairs_do_not_fake_deep_stacks() {
        // [transport, ELI(7), EL]: an LDP LSP with RFC 6790 entropy.
        // With the default config the effective depth is 1 and the
        // transport label sits outside every vendor range → nothing.
        let entropy_hop = hop(1, &[600_000, 7, 412_345]);
        assert!(detect(vec![entropy_hop.clone()]).is_empty());

        // Disabling the refinement reproduces the raw reading: depth 3
        // → LSO.
        let config = DetectorConfig { ignore_entropy_labels: false, ..Default::default() };
        let t = trace(vec![entropy_hop]);
        let segments = detect_segments(&t, &config);
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].flag, Flag::Lso);
    }

    #[test]
    fn entropy_below_a_real_stack_still_counts_the_real_part() {
        // [sr-ish, service, ELI, EL]: effective depth 2 → LSO (no
        // evidence), the entropy tail ignored.
        let segments = detect(vec![hop(1, &[600_000, 700_000, 7, 99_000])]);
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].flag, Flag::Lso);
    }

    // ---- Provenance ----

    #[test]
    fn cvr_provenance_names_the_confirming_fingerprint() {
        let segments = detect(vec![
            hop(1, &[16_005]),
            with_evidence(hop(2, &[16_005]), VendorEvidence::Exact(Vendor::Cisco)),
            hop(3, &[16_005]),
        ]);
        assert_eq!(segments[0].flag, Flag::Cvr);
        let p = &segments[0].provenance;
        assert_eq!(p.trigger_hop, 0);
        assert_eq!(p.run_len, 3);
        assert_eq!(p.distinct_addrs, 3);
        assert_eq!(p.lses_consulted, 3, "one top label per sequence hop");
        assert_eq!(p.fingerprint, Some(VendorEvidence::Exact(Vendor::Cisco)));
        assert!(p.label_in_vendor_range);
        assert!(!p.suffix_matched);
        let chain = p.chain();
        assert!(chain.contains("trigger_hop=0"), "{chain}");
        assert!(chain.contains("fingerprint=Cisco "), "{chain}");
        assert!(chain.contains("in_vendor_range=true"), "{chain}");
    }

    #[test]
    fn co_provenance_records_consulted_but_unconfirming_evidence() {
        // Juniper evidence was consulted, but Juniper publishes no
        // ranges → CO with the verdict preserved in the chain.
        let segments = detect(vec![
            hop(1, &[16_005]),
            with_evidence(hop(2, &[16_005]), VendorEvidence::Exact(Vendor::Juniper)),
        ]);
        assert_eq!(segments[0].flag, Flag::Co);
        let p = &segments[0].provenance;
        assert_eq!(p.fingerprint, Some(VendorEvidence::Exact(Vendor::Juniper)));
        assert!(!p.label_in_vendor_range);
        // And with nobody fingerprinted at all:
        let segments = detect(vec![hop(4, &[17_005]), hop(5, &[17_005])]);
        assert_eq!(segments[0].provenance.fingerprint, None);
        assert!(segments[0].provenance.chain().contains("fingerprint=none"));
    }

    #[test]
    fn stack_flag_provenance_counts_the_full_visible_stack() {
        // [sr-ish, service, ELI, EL]: 4 LSEs consulted, effective
        // depth 2 after the entropy pair is excluded.
        let segments = detect(vec![hop(1, &[600_000, 700_000, 7, 99_000])]);
        assert_eq!(segments[0].flag, Flag::Lso);
        let p = &segments[0].provenance;
        assert_eq!(p.trigger_hop, 0);
        assert_eq!(p.run_len, 1);
        assert_eq!(p.lses_consulted, 4);
        assert_eq!(p.effective_depth, 2);
        assert_eq!(p.fingerprint, None);
        assert!(!p.label_in_vendor_range);
    }

    #[test]
    fn suffix_matched_sequences_say_so_in_their_chain() {
        let segments = detect(vec![hop(1, &[16_005]), hop(2, &[13_005])]);
        assert!(segments[0].provenance.suffix_matched);
        assert!(segments[0].provenance.chain().contains("suffix_matched=true"));
    }

    #[test]
    fn longer_min_sequence_len_demotes_pairs() {
        let config = DetectorConfig { min_sequence_len: 3, ..Default::default() };
        let t = trace(vec![hop(1, &[17_005]), hop(2, &[17_005])]);
        let segments = detect_segments(&t, &config);
        assert!(segments.iter().all(|s| s.flag != Flag::Co));
    }
}
