//! Per-hop area characterization (§7.1).
//!
//! Once segments are detected, every hop of a trace belongs to one of
//! three areas: **SR-MPLS** (inside a detected segment), **classic
//! MPLS** (MPLS involvement without an SR flag), or **IP**. Following
//! §6.3 the default is conservative: only the strong flags (CVR, CO,
//! LSVR, LVR) define SR areas, LSO-flagged hops count as classic MPLS
//! unless explicitly included.

use crate::detect::DetectedSegment;
use crate::model::AugmentedTrace;

/// A hop's routing area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Area {
    /// Inside a detected SR-MPLS segment.
    Sr,
    /// MPLS involvement without an SR signal.
    Mpls,
    /// Plain IP.
    Ip,
}

/// Characterization configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct AreaConfig {
    /// Whether LSO-flagged segments count as SR. The paper's
    /// conservative default is `false` (§6.3: "segments flagged by
    /// LSO will therefore be excluded from further analysis").
    pub include_lso: bool,
}

/// Assigns an area to every hop of the trace, given its detected
/// segments.
pub fn classify_areas(
    trace: &AugmentedTrace,
    segments: &[DetectedSegment],
    config: &AreaConfig,
) -> Vec<Area> {
    let mut areas: Vec<Area> =
        trace.hops.iter().map(|h| if h.is_mpls() { Area::Mpls } else { Area::Ip }).collect();
    for segment in segments {
        if !segment.flag.is_strong() && !config.include_lso {
            continue;
        }
        for area in areas.iter_mut().take(segment.end + 1).skip(segment.start) {
            *area = Area::Sr;
        }
    }
    areas
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{detect_segments, DetectorConfig};
    use crate::model::AugmentedHop;
    use arest_wire::mpls::{Label, LabelStack};
    use std::net::Ipv4Addr;

    fn hop(n: u8, labels: &[u32]) -> AugmentedHop {
        let addr = Ipv4Addr::new(10, 0, 0, n);
        if labels.is_empty() {
            AugmentedHop::ip(addr)
        } else {
            let labels: Vec<Label> = labels.iter().map(|&v| Label::new(v).unwrap()).collect();
            AugmentedHop::labeled(addr, LabelStack::from_labels(&labels, 1))
        }
    }

    fn classify(hops: Vec<AugmentedHop>, include_lso: bool) -> Vec<Area> {
        let trace = AugmentedTrace::new("vp", Ipv4Addr::new(203, 0, 113, 1), hops);
        let segments = detect_segments(&trace, &DetectorConfig::default());
        classify_areas(&trace, &segments, &AreaConfig { include_lso })
    }

    #[test]
    fn strong_segments_become_sr_areas() {
        let areas =
            classify(vec![hop(1, &[]), hop(2, &[17_000]), hop(3, &[17_000]), hop(4, &[])], false);
        assert_eq!(areas, vec![Area::Ip, Area::Sr, Area::Sr, Area::Ip]);
    }

    #[test]
    fn lone_labels_without_flags_stay_classic_mpls() {
        let areas = classify(vec![hop(1, &[]), hop(2, &[400_000]), hop(3, &[])], false);
        assert_eq!(areas, vec![Area::Ip, Area::Mpls, Area::Ip]);
    }

    #[test]
    fn lso_is_excluded_by_default_but_includable() {
        let hops = vec![hop(1, &[500_000, 600_000])];
        assert_eq!(classify(hops.clone(), false), vec![Area::Mpls], "conservative default");
        assert_eq!(classify(hops, true), vec![Area::Sr], "opt-in inclusion");
    }

    #[test]
    fn revealed_hops_are_mpls() {
        let mut revealed = hop(2, &[]);
        revealed.revealed = true;
        let areas = classify(vec![hop(1, &[]), revealed], false);
        assert_eq!(areas, vec![Area::Ip, Area::Mpls]);
    }
}
