//! # arest-core
//!
//! **AReST — Advanced Revelation of Segment Routing Tunnels.**
//!
//! The paper's contribution: a post-processing methodology that takes
//! traceroute paths augmented with MPLS label stacks (TNT output) and
//! hardware-vendor fingerprints, and highlights contiguous portions —
//! *segments* — exhibiting signals of SR-MPLS. Five detection flags,
//! ordered by signal strength (§4):
//!
//! | flag | trigger | strength |
//! |------|---------|----------|
//! | CVR  | consecutive identical labels + vendor SR range match | ★★★★★ |
//! | CO   | consecutive identical labels only                    | ★★★★ |
//! | LSVR | stack ≥ 2 LSEs, top label in vendor SR range         | ★★★★ |
//! | LVR  | single LSE in vendor SR range                        | ★★★ |
//! | LSO  | stack ≥ 2 LSEs, nothing else                         | ★ |
//!
//! # Example
//!
//! ```
//! use arest_core::detect::{detect_segments, DetectorConfig};
//! use arest_core::model::{AugmentedHop, AugmentedTrace};
//! use arest_core::flags::Flag;
//! use arest_wire::mpls::{Label, LabelStack};
//! use std::net::Ipv4Addr;
//!
//! // Two consecutive hops quoting the same label: the CO signature.
//! let stack = |v| LabelStack::from_labels(&[Label::new(v).unwrap()], 1);
//! let trace = AugmentedTrace::new(
//!     "vp1",
//!     Ipv4Addr::new(203, 0, 113, 9),
//!     vec![
//!         AugmentedHop::labeled(Ipv4Addr::new(10, 0, 0, 1), stack(17_005)),
//!         AugmentedHop::labeled(Ipv4Addr::new(10, 0, 0, 2), stack(17_005)),
//!     ],
//! );
//! let segments = detect_segments(&trace, &DetectorConfig::default());
//! assert_eq!(segments[0].flag, Flag::Co);
//! assert_eq!(segments[0].flag.signal_strength(), 4);
//! ```
//!
//! Modules:
//! * [`model`] — the augmented-trace input format.
//! * [`flags`] — the flag vocabulary and signal strengths.
//! * [`ranges`] — vendor-evidence × SR-label-range matching,
//!   including the Cisco/Huawei intersection rule for TTL evidence.
//! * [`detect`] — the segment detector (the heart of AReST).
//! * [`classify`] — per-hop SR / classic-MPLS / IP area
//!   characterization (§7.1), conservative by default (LSO excluded,
//!   §6.3).
//! * [`interworking`] — SR↔LDP interworking chains and cloud sizes
//!   (§7.2).
//! * [`metrics`] — ground-truth validation (Table 3's TP/FP/FN
//!   computation).
//! * [`baseline`] — the Marechal et al. (IMC'22 poster) comparator:
//!   Cisco-SRGB matching on fingerprinted hops, no label sequences.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod classify;
pub mod columnar;
pub mod detect;
pub mod flags;
pub mod interworking;
pub mod metrics;
pub mod model;
pub mod ranges;

pub use classify::{classify_areas, Area, AreaConfig};
pub use columnar::{detect_segments_arena, ArenaDetector, AugmentedArena};
pub use detect::{detect_segments, DetectedSegment, DetectorConfig};
pub use flags::Flag;
pub use interworking::{analyze_interworking, Cloud, CloudKind, InterworkingMode};
pub use metrics::{validate, Validation};
pub use model::{AugmentedHop, AugmentedTrace};
