//! The Marechal et al. baseline (IMC'22 poster).
//!
//! The paper's predecessor detected SR-MPLS by (i) identifying Cisco
//! routers through TTL-based fingerprinting and (ii) mapping observed
//! labels to Cisco's known SRGB — *without* considering 20-bit label
//! sequences (§8: "their analysis is incomplete compared to this
//! paper, in particular by not taking 20-bit label sequences into
//! consideration").
//!
//! Reproducing it gives AReST its comparison point: the baseline can
//! only fire on fingerprinted hops, so its coverage collapses wherever
//! fingerprinting fails (e.g. ESnet, where nothing answers), while
//! AReST's CO flag still sees the label sequences.

use crate::model::AugmentedTrace;
use arest_fingerprint::combined::VendorEvidence;
use arest_sr::block::cisco_srgb;
use arest_topo::vendor::Vendor;
use arest_wire::mpls::Label;

/// One baseline detection: a single hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineDetection {
    /// Index of the hop in the trace.
    pub hop: usize,
    /// The label that matched Cisco's SRGB.
    pub label: Label,
}

/// Runs the baseline over one trace.
pub fn detect_baseline(trace: &AugmentedTrace) -> Vec<BaselineDetection> {
    trace
        .hops
        .iter()
        .enumerate()
        .filter_map(|(idx, hop)| {
            let label = hop.top_label()?;
            let is_cisco_like = matches!(
                hop.evidence?,
                VendorEvidence::CiscoOrHuawei | VendorEvidence::Exact(Vendor::Cisco)
            );
            (is_cisco_like && cisco_srgb().contains(label))
                .then_some(BaselineDetection { hop: idx, label })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AugmentedHop;
    use arest_wire::mpls::LabelStack;
    use std::net::Ipv4Addr;

    fn hop(n: u8, label: Option<u32>, evidence: Option<VendorEvidence>) -> AugmentedHop {
        let addr = Ipv4Addr::new(10, 0, 3, n);
        let mut h = match label {
            Some(l) => {
                AugmentedHop::labeled(addr, LabelStack::from_labels(&[Label::new(l).unwrap()], 1))
            }
            None => AugmentedHop::ip(addr),
        };
        h.evidence = evidence;
        h
    }

    fn trace(hops: Vec<AugmentedHop>) -> AugmentedTrace {
        AugmentedTrace::new("vp", Ipv4Addr::new(203, 0, 113, 1), hops)
    }

    #[test]
    fn fires_on_fingerprinted_cisco_srgb_labels() {
        let t = trace(vec![
            hop(1, Some(16_005), Some(VendorEvidence::CiscoOrHuawei)),
            hop(2, Some(16_005), Some(VendorEvidence::Exact(Vendor::Cisco))),
        ]);
        let detections = detect_baseline(&t);
        assert_eq!(detections.len(), 2);
        assert_eq!(detections[0].label.value(), 16_005);
    }

    #[test]
    fn blind_without_fingerprints_where_arest_co_still_sees() {
        // The ESnet situation: a clear label sequence, zero
        // fingerprint coverage — the baseline finds nothing.
        let t = trace(vec![
            hop(1, Some(17_000), None),
            hop(2, Some(17_000), None),
            hop(3, Some(17_000), None),
        ]);
        assert!(detect_baseline(&t).is_empty());
        let arest = crate::detect::detect_segments(&t, &Default::default());
        assert_eq!(arest.len(), 1, "AReST's CO flag covers the same trace");
    }

    #[test]
    fn non_cisco_evidence_is_ignored() {
        let t = trace(vec![hop(1, Some(16_005), Some(VendorEvidence::Exact(Vendor::Juniper)))]);
        assert!(detect_baseline(&t).is_empty());
    }

    #[test]
    fn labels_outside_cisco_srgb_are_ignored() {
        let t = trace(vec![hop(1, Some(40_000), Some(VendorEvidence::CiscoOrHuawei))]);
        assert!(detect_baseline(&t).is_empty());
    }
}
