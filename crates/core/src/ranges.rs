//! Vendor evidence × SR label range matching.
//!
//! The paper's rule (§5): SNMPv3 evidence names an exact vendor, so
//! labels are matched against that vendor's Table 1 ranges; TTL
//! evidence can only say "Cisco or Huawei", so labels are matched
//! against the *intersection* of the two vendors' SRGBs
//! (16,000–23,999).

use arest_fingerprint::combined::VendorEvidence;
use arest_sr::block::{cisco_huawei_srgb_intersection, VendorSrRanges};
use arest_wire::mpls::Label;

/// Whether `label` falls inside a known SR range for the vendor the
/// evidence describes.
pub fn label_in_sr_range(evidence: VendorEvidence, label: Label) -> bool {
    match evidence {
        VendorEvidence::Exact(vendor) => VendorSrRanges::defaults(vendor).covers(label),
        VendorEvidence::CiscoOrHuawei => cisco_huawei_srgb_intersection().contains(label),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arest_topo::vendor::Vendor;

    fn l(v: u32) -> Label {
        Label::new(v).unwrap()
    }

    #[test]
    fn exact_cisco_matches_srgb_and_srlb() {
        let e = VendorEvidence::Exact(Vendor::Cisco);
        assert!(label_in_sr_range(e, l(16_005)), "SRGB");
        assert!(label_in_sr_range(e, l(15_500)), "SRLB");
        assert!(!label_in_sr_range(e, l(30_000)));
    }

    #[test]
    fn exact_huawei_matches_its_wider_srgb() {
        let e = VendorEvidence::Exact(Vendor::Huawei);
        assert!(label_in_sr_range(e, l(40_000)), "inside Huawei SRGB, outside Cisco's");
        assert!(label_in_sr_range(e, l(50_000)), "Huawei SRLB");
    }

    #[test]
    fn ttl_evidence_uses_the_intersection_only() {
        let e = VendorEvidence::CiscoOrHuawei;
        assert!(label_in_sr_range(e, l(16_005)));
        assert!(label_in_sr_range(e, l(23_999)));
        // 40,000 is Huawei SRGB but NOT Cisco's: the intersection rule
        // must reject it.
        assert!(!label_in_sr_range(e, l(40_000)));
        // Cisco's SRLB is not in the intersection either.
        assert!(!label_in_sr_range(e, l(15_500)));
    }

    #[test]
    fn vendors_without_published_defaults_never_match() {
        for vendor in [Vendor::Juniper, Vendor::Nokia, Vendor::Linux] {
            assert!(!label_in_sr_range(VendorEvidence::Exact(vendor), l(16_005)), "{vendor}");
        }
    }

    #[test]
    fn arista_exact_matches_high_ranges() {
        let e = VendorEvidence::Exact(Vendor::Arista);
        assert!(label_in_sr_range(e, l(900_500)));
        assert!(label_in_sr_range(e, l(100_100)));
        assert!(!label_in_sr_range(e, l(16_005)), "Arista blocks sit high");
    }
}
