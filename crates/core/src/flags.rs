//! The five detection flags and their signal strengths (§4).

use core::fmt;

/// An AReST detection flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Flag {
    /// Consecutive & Vendor Range: identical labels across consecutive
    /// hops, with at least one hop fingerprint-mapped into a vendor SR
    /// range (§4.1).
    Cvr,
    /// Consecutive Only: identical labels across consecutive hops, no
    /// vendor mapping available (§4.2).
    Co,
    /// Label Stack & Vendor Range: a stack of ≥ 2 LSEs whose active
    /// label falls in the fingerprinted vendor's SR range (§4.3).
    Lsvr,
    /// Label & Vendor Range: a single LSE in the fingerprinted
    /// vendor's SR range (§4.4).
    Lvr,
    /// Label Stack Only: a stack of ≥ 2 LSEs with no sequence and no
    /// vendor mapping (§4.5).
    Lso,
}

impl Flag {
    /// All flags, strongest first — the paper's presentation order.
    pub const ALL: [Flag; 5] = [Flag::Cvr, Flag::Co, Flag::Lsvr, Flag::Lvr, Flag::Lso];

    /// Signal strength in stars, as assigned in §4: CVR ★5, CO ★4,
    /// LSVR ★4, LVR ★3, LSO ★1.
    pub const fn signal_strength(self) -> u8 {
        match self {
            Flag::Cvr => 5,
            Flag::Co => 4,
            Flag::Lsvr => 4,
            Flag::Lvr => 3,
            Flag::Lso => 1,
        }
    }

    /// The "strong" flags the paper trusts for characterization
    /// (§6.3/§7: everything but LSO).
    pub const fn is_strong(self) -> bool {
        !matches!(self, Flag::Lso)
    }
}

impl fmt::Display for Flag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Flag::Cvr => "CVR",
            Flag::Co => "CO",
            Flag::Lsvr => "LSVR",
            Flag::Lvr => "LVR",
            Flag::Lso => "LSO",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strengths_match_the_paper() {
        assert_eq!(Flag::Cvr.signal_strength(), 5);
        assert_eq!(Flag::Co.signal_strength(), 4);
        assert_eq!(Flag::Lsvr.signal_strength(), 4);
        assert_eq!(Flag::Lvr.signal_strength(), 3);
        assert_eq!(Flag::Lso.signal_strength(), 1);
    }

    #[test]
    fn only_lso_is_weak() {
        for flag in Flag::ALL {
            assert_eq!(flag.is_strong(), flag != Flag::Lso);
        }
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = Flag::ALL.iter().map(Flag::to_string).collect();
        assert_eq!(names, vec!["CVR", "CO", "LSVR", "LVR", "LSO"]);
    }
}
