//! Ground-truth validation — Table 3's computation.
//!
//! Given detected segments and an oracle that knows, per interface,
//! whether the interface really runs SR-MPLS (in this reproduction,
//! the synthetic-Internet generator's deployment record; in the
//! paper, the ESnet operator), this module computes per-flag segment
//! counts and TP/FP rates, plus interface-level precision/recall and
//! false negatives.

use crate::detect::DetectedSegment;
use crate::flags::Flag;
use crate::model::AugmentedTrace;
use std::collections::{BTreeMap, HashSet};
use std::net::Ipv4Addr;

/// Per-flag validation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlagCounts {
    /// Segments that raised this flag.
    pub segments: usize,
    /// Segments whose every responding hop is truly SR.
    pub true_positive: usize,
    /// Segments containing at least one non-SR hop.
    pub false_positive: usize,
}

impl FlagCounts {
    /// Precision over segments; `None` with no segments.
    pub fn precision(&self) -> Option<f64> {
        if self.segments == 0 {
            None
        } else {
            Some(self.true_positive as f64 / self.segments as f64)
        }
    }

    /// False-positive rate over segments; `None` with no segments.
    pub fn fp_rate(&self) -> Option<f64> {
        self.precision().map(|p| 1.0 - p)
    }
}

/// The validation report.
#[derive(Debug, Clone, Default)]
pub struct Validation {
    /// Per-flag segment counters, iterable in flag order.
    pub per_flag: BTreeMap<Flag, FlagCounts>,
    /// Distinct interfaces inside flagged segments that are truly SR.
    pub iface_true_positive: usize,
    /// Distinct flagged interfaces that are NOT SR.
    pub iface_false_positive: usize,
    /// Distinct truly-SR MPLS interfaces never flagged (missed).
    pub iface_false_negative: usize,
    /// Distinct non-SR MPLS interfaces correctly left unflagged.
    pub iface_true_negative: usize,
}

impl Validation {
    /// Total segments across all flags.
    pub fn total_segments(&self) -> usize {
        self.per_flag.values().map(|c| c.segments).sum()
    }

    /// Interface-level precision; `None` when nothing was flagged.
    pub fn iface_precision(&self) -> Option<f64> {
        let flagged = self.iface_true_positive + self.iface_false_positive;
        if flagged == 0 {
            None
        } else {
            Some(self.iface_true_positive as f64 / flagged as f64)
        }
    }

    /// Interface-level recall; `None` when nothing is truly SR.
    pub fn iface_recall(&self) -> Option<f64> {
        let actual = self.iface_true_positive + self.iface_false_negative;
        if actual == 0 {
            None
        } else {
            Some(self.iface_true_positive as f64 / actual as f64)
        }
    }
}

/// Validates detections against an oracle.
///
/// The oracle answers "is this interface address part of an SR-MPLS
/// deployment?". Interface-level negatives are computed over MPLS
/// hops only (IP hops say nothing about SR-vs-LDP classification).
///
/// Takes borrowed `(trace, segments)` pairs — e.g. the iterator
/// `AsResult::detections` yields — so validation never clones traces.
pub fn validate<'a, I, F>(results: I, oracle: F) -> Validation
where
    I: IntoIterator<Item = (&'a AugmentedTrace, &'a [DetectedSegment])>,
    F: Fn(Ipv4Addr) -> bool,
{
    let mut validation = Validation::default();
    for flag in Flag::ALL {
        validation.per_flag.insert(flag, FlagCounts::default());
    }

    let mut flagged_ifaces: HashSet<Ipv4Addr> = HashSet::new();
    let mut mpls_ifaces: HashSet<Ipv4Addr> = HashSet::new();

    for (trace, segments) in results {
        for hop in &trace.hops {
            if let (Some(addr), true) = (hop.addr, hop.is_mpls()) {
                mpls_ifaces.insert(addr);
            }
        }
        for segment in segments {
            let counts = validation.per_flag.get_mut(&segment.flag).expect("all flags present");
            counts.segments += 1;
            let addrs: Vec<Ipv4Addr> =
                trace.hops[segment.start..=segment.end].iter().filter_map(|h| h.addr).collect();
            flagged_ifaces.extend(&addrs);
            if addrs.iter().all(|&a| oracle(a)) {
                counts.true_positive += 1;
            } else {
                counts.false_positive += 1;
            }
        }
    }

    for &addr in &flagged_ifaces {
        if oracle(addr) {
            validation.iface_true_positive += 1;
        } else {
            validation.iface_false_positive += 1;
        }
    }
    for &addr in mpls_ifaces.difference(&flagged_ifaces) {
        if oracle(addr) {
            validation.iface_false_negative += 1;
        } else {
            validation.iface_true_negative += 1;
        }
    }

    validation
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{detect_segments, DetectorConfig};
    use crate::model::AugmentedHop;
    use arest_wire::mpls::{Label, LabelStack};

    fn hop(n: u8, labels: &[u32]) -> AugmentedHop {
        let addr = Ipv4Addr::new(10, 0, 2, n);
        if labels.is_empty() {
            AugmentedHop::ip(addr)
        } else {
            let labels: Vec<Label> = labels.iter().map(|&v| Label::new(v).unwrap()).collect();
            AugmentedHop::labeled(addr, LabelStack::from_labels(&labels, 1))
        }
    }

    fn run(hops: Vec<AugmentedHop>) -> (AugmentedTrace, Vec<DetectedSegment>) {
        let trace = AugmentedTrace::new("vp", Ipv4Addr::new(203, 0, 113, 1), hops);
        let segments = detect_segments(&trace, &DetectorConfig::default());
        (trace, segments)
    }

    fn borrowed(
        results: &[(AugmentedTrace, Vec<DetectedSegment>)],
    ) -> impl Iterator<Item = (&AugmentedTrace, &[DetectedSegment])> {
        results.iter().map(|(t, s)| (t, s.as_slice()))
    }

    #[test]
    fn perfect_ground_truth_like_esnet() {
        // CO sequence + LSO stack, everything truly SR: the Table 3
        // shape — 0 % FP, 0 % FN.
        let results = vec![
            run(vec![hop(1, &[17_000]), hop(2, &[17_000]), hop(3, &[17_000])]),
            run(vec![hop(4, &[400_000, 500_000])]),
        ];
        let v = validate(borrowed(&results), |_| true);
        assert_eq!(v.per_flag[&Flag::Co].segments, 1);
        assert_eq!(v.per_flag[&Flag::Co].precision(), Some(1.0));
        assert_eq!(v.per_flag[&Flag::Lso].segments, 1);
        assert_eq!(v.per_flag[&Flag::Lso].fp_rate(), Some(0.0));
        assert_eq!(v.iface_false_negative, 0);
        assert_eq!(v.iface_precision(), Some(1.0));
        assert_eq!(v.iface_recall(), Some(1.0));
        assert_eq!(v.total_segments(), 2);
    }

    #[test]
    fn false_positive_segment_is_counted() {
        let results = vec![run(vec![hop(1, &[17_000]), hop(2, &[17_000])])];
        // Oracle says nothing is SR: the CO segment is a false positive.
        let v = validate(borrowed(&results), |_| false);
        assert_eq!(v.per_flag[&Flag::Co].false_positive, 1);
        assert_eq!(v.per_flag[&Flag::Co].precision(), Some(0.0));
        assert_eq!(v.iface_false_positive, 2);
        assert_eq!(v.iface_precision(), Some(0.0));
    }

    #[test]
    fn missed_sr_interfaces_are_false_negatives() {
        // A lone unmapped label (no flag possible) on a truly-SR hop.
        let results = vec![run(vec![hop(1, &[345_000])])];
        let v = validate(borrowed(&results), |_| true);
        assert_eq!(v.total_segments(), 0);
        assert_eq!(v.iface_false_negative, 1);
        assert_eq!(v.iface_recall(), Some(0.0));
        assert_eq!(v.iface_precision(), None);
    }

    #[test]
    fn non_sr_mpls_left_unflagged_is_true_negative() {
        let results = vec![run(vec![hop(1, &[345_000])])];
        let v = validate(borrowed(&results), |_| false);
        assert_eq!(v.iface_true_negative, 1);
        assert_eq!(v.iface_false_negative, 0);
    }

    #[test]
    fn ip_hops_do_not_enter_negative_counts() {
        let results = vec![run(vec![hop(1, &[])])];
        let v = validate(borrowed(&results), |_| true);
        assert_eq!(v.iface_true_negative + v.iface_false_negative, 0, "IP hops are out of scope");
    }
}
