//! Columnar (struct-of-arrays) augmented traces and the five-flag
//! scan over them.
//!
//! [`AugmentedArena`] is the detector-facing sibling of the trace
//! arena in `arest-tnt`: the same flat-columns-plus-offsets layout
//! (see that crate's `arena` module for the diagram), restricted to
//! the fields the detection flags read — address, vendor evidence,
//! and the flattened label stacks. The streaming pipeline builds one
//! per AS and runs [`ArenaDetector`] over it, so the hot CVR/CO
//! run-length scan and the per-hop LSVR/LVR/LSO classification walk
//! contiguous memory instead of chasing `Arc`s hop by hop.
//!
//! The detector is a literal mirror of `detect_segments_inner` — same
//! phases, same provenance fields, same ordering, same observability
//! counters — and [`detect_segments_arena`] is property-tested
//! byte-identical against the nested path (`tests/columnar_identity`
//! plus the pipeline's `parallel_build_matches_*` suite, where the
//! staged nested build is the oracle).

use crate::detect::{flag_slot, DetectedSegment, DetectorConfig, Provenance, OBS, TRACER};
use crate::flags::Flag;
use crate::model::{AugmentedHop, AugmentedTrace};
use crate::ranges::label_in_sr_range;
use arest_fingerprint::combined::VendorEvidence;
use arest_obs::SpanContext;
use arest_wire::bitmap::Bitmap;
use arest_wire::mpls::{Label, LabelStack, Lse};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Augmented traces in columnar layout: per-trace vp/dst plus hop
/// offsets, per-hop addr/evidence/qTTL columns with validity bitmaps,
/// and one flattened LSE array indexed by per-hop offsets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AugmentedArena {
    vps: Vec<Arc<str>>,
    dsts: Vec<Ipv4Addr>,
    /// Hop range of trace `t`: `hop_off[t]..hop_off[t+1]`.
    hop_off: Vec<u32>,
    addrs: Vec<Ipv4Addr>,
    addr_valid: Bitmap,
    evidence: Vec<Option<VendorEvidence>>,
    qttls: Vec<u8>,
    qttl_valid: Bitmap,
    revealed: Bitmap,
    is_destination: Bitmap,
    has_stack: Bitmap,
    /// LSE range of hop `h`: `lse_off[h]..lse_off[h+1]`.
    lse_off: Vec<u32>,
    lses: Vec<Lse>,
}

impl AugmentedArena {
    /// An empty arena; grow it with [`AugmentedArena::begin_trace`] /
    /// [`AugmentedArena::push_hop`] / [`AugmentedArena::finish_trace`].
    pub fn new() -> AugmentedArena {
        AugmentedArena { hop_off: vec![0], lse_off: vec![0], ..AugmentedArena::default() }
    }

    /// Converts nested augmented traces into columns (lossless, see
    /// [`AugmentedArena::to_traces`]).
    pub fn from_traces(traces: &[AugmentedTrace]) -> AugmentedArena {
        let mut arena = AugmentedArena::new();
        for trace in traces {
            arena.begin_trace(trace.vp.clone(), trace.dst);
            for hop in &trace.hops {
                arena.push_hop(
                    hop.addr,
                    hop.stack.as_deref().map(LabelStack::entries),
                    hop.evidence,
                    hop.revealed,
                    hop.quoted_ip_ttl,
                    hop.is_destination,
                );
            }
            arena.finish_trace();
        }
        arena
    }

    /// Materializes the columns back into nested augmented traces
    /// (stack `Arc`s rebuilt, values identical).
    pub fn to_traces(&self) -> Vec<AugmentedTrace> {
        (0..self.len())
            .map(|t| {
                let (h0, h1) = self.hop_range(t);
                let hops = (h0..h1)
                    .map(|h| AugmentedHop {
                        addr: self.addr(h),
                        stack: self
                            .lses(h)
                            .map(|lses| Arc::new(LabelStack::from_entries(lses.to_vec()))),
                        evidence: self.evidence[h],
                        revealed: self.revealed.get(h),
                        quoted_ip_ttl: self.qttl_valid.get(h).then(|| self.qttls[h]),
                        is_destination: self.is_destination.get(h),
                    })
                    .collect();
                AugmentedTrace::new(self.vps[t].clone(), self.dsts[t], hops)
            })
            .collect()
    }

    /// Starts a new trace; follow with hop pushes and
    /// [`AugmentedArena::finish_trace`].
    pub fn begin_trace(&mut self, vp: Arc<str>, dst: Ipv4Addr) {
        self.vps.push(vp);
        self.dsts.push(dst);
    }

    /// Appends one hop to the trace being built.
    pub fn push_hop(
        &mut self,
        addr: Option<Ipv4Addr>,
        stack: Option<&[Lse]>,
        evidence: Option<VendorEvidence>,
        revealed: bool,
        quoted_ip_ttl: Option<u8>,
        is_destination: bool,
    ) {
        self.addr_valid.push(addr.is_some());
        self.addrs.push(addr.unwrap_or(Ipv4Addr::UNSPECIFIED));
        self.evidence.push(evidence);
        self.qttl_valid.push(quoted_ip_ttl.is_some());
        self.qttls.push(quoted_ip_ttl.unwrap_or(0));
        self.revealed.push(revealed);
        self.is_destination.push(is_destination);
        self.has_stack.push(stack.is_some());
        self.lses.extend_from_slice(stack.unwrap_or(&[]));
        let lses = u32::try_from(self.lses.len()).expect("LSE count fits u32");
        self.lse_off.push(lses);
    }

    /// Closes the trace being built, returning its index.
    pub fn finish_trace(&mut self) -> usize {
        let hops = u32::try_from(self.addrs.len()).expect("hop count fits u32");
        self.hop_off.push(hops);
        self.len() - 1
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.vps.len()
    }

    /// Whether the arena holds no traces.
    pub fn is_empty(&self) -> bool {
        self.vps.is_empty()
    }

    /// Total number of hops across all traces.
    pub fn hop_count(&self) -> usize {
        self.addrs.len()
    }

    /// Total number of flattened LSEs.
    pub fn lse_count(&self) -> usize {
        self.lses.len()
    }

    /// Destination of trace `t`.
    pub fn dst(&self, t: usize) -> Ipv4Addr {
        self.dsts[t]
    }

    /// Vantage-point name of trace `t`.
    pub fn vp(&self, t: usize) -> &Arc<str> {
        &self.vps[t]
    }

    fn hop_range(&self, t: usize) -> (usize, usize) {
        (self.hop_off[t] as usize, self.hop_off[t + 1] as usize)
    }

    fn addr(&self, h: usize) -> Option<Ipv4Addr> {
        self.addr_valid.get(h).then(|| self.addrs[h])
    }

    /// Quoted LSEs of hop `h`, `None` when no stack was quoted.
    fn lses(&self, h: usize) -> Option<&[Lse]> {
        self.has_stack.get(h).then(|| {
            let (start, end) = (self.lse_off[h] as usize, self.lse_off[h + 1] as usize);
            &self.lses[start..end]
        })
    }

    fn top_label(&self, h: usize) -> Option<Label> {
        self.lses(h).and_then(<[Lse]>::first).map(|lse| lse.label)
    }

    /// Visible stack depth of hop `h` (0 when no stack was quoted —
    /// the nested `stack.map_or(0, depth)` reading).
    fn stack_depth(&self, h: usize) -> usize {
        (self.lse_off[h + 1] - self.lse_off[h]) as usize
    }

    /// Mirror of the nested `effective_depth`: everything from the
    /// first RFC 6790 Entropy Label Indicator downward is excluded.
    fn effective_depth(&self, h: usize, config: &DetectorConfig) -> usize {
        let Some(lses) = self.lses(h) else { return 0 };
        if !config.ignore_entropy_labels {
            return lses.len();
        }
        lses.iter().position(|lse| lse.label == Label::ENTROPY_INDICATOR).unwrap_or(lses.len())
    }
}

/// The five-flag scan over an [`AugmentedArena`], one trace at a time,
/// with scratch buffers (`claimed` slots, the distinct-address sort)
/// reused across traces instead of reallocated per trace.
pub struct ArenaDetector<'a> {
    arena: &'a AugmentedArena,
    config: DetectorConfig,
    claimed: Vec<bool>,
    addr_scratch: Vec<Ipv4Addr>,
}

impl<'a> ArenaDetector<'a> {
    /// A detector over `arena` with the given knobs.
    pub fn new(arena: &'a AugmentedArena, config: &DetectorConfig) -> ArenaDetector<'a> {
        ArenaDetector { arena, config: *config, claimed: Vec::new(), addr_scratch: Vec::new() }
    }

    /// Runs the detector over trace `t` (unspanned).
    pub fn detect(&mut self, t: usize) -> Vec<DetectedSegment> {
        self.detect_spanned(t, SpanContext::NONE)
    }

    /// [`ArenaDetector::detect`] parented under an explicit span
    /// context — opens the same `core.detect.trace` span and records
    /// the same fields as the nested `detect_segments_spanned`.
    pub fn detect_spanned(&mut self, t: usize, parent: SpanContext) -> Vec<DetectedSegment> {
        let mut span = TRACER.span_with_parent("core.detect.trace", parent);
        let segments = self.detect_inner(t);
        if span.is_recording() {
            span.record("dst", self.arena.dst(t));
            span.record("segments", segments.len());
            for segment in &segments {
                span.record(
                    "detection",
                    format!("{} {}", segment.flag, segment.provenance.chain()),
                );
            }
        }
        segments
    }

    /// The columnar mirror of `detect_segments_inner`: identical
    /// phases, branch decisions, provenance, ordering, and counters —
    /// only the data access is columnar (hop indices stay
    /// trace-relative, exactly like the nested `trace.hops` indices).
    fn detect_inner(&mut self, t: usize) -> Vec<DetectedSegment> {
        let arena = self.arena;
        let config = &self.config;
        let (h0, h1) = arena.hop_range(t);
        let n = h1 - h0;
        let mut segments = Vec::new();
        self.claimed.clear();
        self.claimed.resize(n, false);

        // ---- Phase 1: label sequences (CVR / CO) ----
        let mut i = 0;
        while i < n {
            let Some(first_label) = arena.top_label(h0 + i) else {
                i += 1;
                continue;
            };
            let mut j = i;
            let mut prev_label = first_label;
            let mut suffix_based = false;
            while j + 1 < n {
                let Some(next_label) = arena.top_label(h0 + j + 1) else { break };
                if next_label == prev_label {
                    j += 1;
                    prev_label = next_label;
                } else if config.suffix_matching && next_label.suffix_matches(prev_label) {
                    suffix_based = true;
                    j += 1;
                    prev_label = next_label;
                } else {
                    break;
                }
            }
            let run_len = j - i + 1;
            let distinct_addrs = {
                self.addr_scratch.clear();
                self.addr_scratch.extend((i..=j).filter_map(|k| arena.addr(h0 + k)));
                self.addr_scratch.sort_unstable();
                self.addr_scratch.dedup();
                self.addr_scratch.len()
            };
            if run_len >= config.min_sequence_len && distinct_addrs >= 2 {
                let confirming_hop = (i..=j).find(|&k| {
                    arena.evidence[h0 + k].is_some_and(|e| {
                        arena.top_label(h0 + k).is_some_and(|l| label_in_sr_range(e, l))
                    })
                });
                let flag = if confirming_hop.is_some() { Flag::Cvr } else { Flag::Co };
                let fingerprint = confirming_hop
                    .and_then(|k| arena.evidence[h0 + k])
                    .or_else(|| (i..=j).find_map(|k| arena.evidence[h0 + k]));
                segments.push(DetectedSegment {
                    flag,
                    start: i,
                    end: j,
                    label: first_label,
                    suffix_based,
                    provenance: Provenance {
                        trigger_hop: i,
                        run_len,
                        distinct_addrs,
                        lses_consulted: run_len,
                        effective_depth: arena.effective_depth(h0 + i, config),
                        fingerprint,
                        label_in_vendor_range: confirming_hop.is_some(),
                        suffix_matched: suffix_based,
                    },
                });
                for claimed_slot in self.claimed.iter_mut().take(j + 1).skip(i) {
                    *claimed_slot = true;
                }
                i = j + 1;
            } else {
                i += 1;
            }
        }

        // ---- Phase 2: per-hop stack flags (LSVR / LVR / LSO) ----
        for idx in 0..n {
            if self.claimed[idx] {
                continue;
            }
            let Some(label) = arena.top_label(h0 + idx) else { continue };
            let depth = arena.effective_depth(h0 + idx, config);
            if depth == 0 {
                continue;
            }
            let in_range = arena.evidence[h0 + idx].is_some_and(|e| label_in_sr_range(e, label));
            let flag = if depth >= 2 {
                if in_range {
                    Some(Flag::Lsvr)
                } else {
                    Some(Flag::Lso)
                }
            } else if in_range {
                Some(Flag::Lvr)
            } else {
                None
            };
            if let Some(flag) = flag {
                segments.push(DetectedSegment {
                    flag,
                    start: idx,
                    end: idx,
                    label,
                    suffix_based: false,
                    provenance: Provenance {
                        trigger_hop: idx,
                        run_len: 1,
                        distinct_addrs: usize::from(arena.addr_valid.get(h0 + idx)),
                        lses_consulted: arena.stack_depth(h0 + idx),
                        effective_depth: depth,
                        fingerprint: arena.evidence[h0 + idx],
                        label_in_vendor_range: in_range,
                        suffix_matched: false,
                    },
                });
            }
        }

        segments.sort_by_key(|s| (s.start, s.end));
        let obs = &*OBS;
        obs.traces.inc();
        obs.segments.add(segments.len() as u64);
        for segment in &segments {
            obs.flags[flag_slot(segment.flag)].inc();
        }
        segments
    }
}

/// Runs the columnar detector over every trace of an arena. The
/// convenience entry point for benches and tests; the pipeline drives
/// [`ArenaDetector`] trace by trace to interleave spans.
pub fn detect_segments_arena(
    arena: &AugmentedArena,
    config: &DetectorConfig,
) -> Vec<Vec<DetectedSegment>> {
    let mut detector = ArenaDetector::new(arena, config);
    (0..arena.len()).map(|t| detector.detect(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_segments;
    use arest_topo::vendor::Vendor;

    fn stack(labels: &[u32]) -> LabelStack {
        let labels: Vec<Label> = labels.iter().map(|&v| Label::new(v).unwrap()).collect();
        LabelStack::from_labels(&labels, 1)
    }

    fn hop(n: u8, labels: &[u32]) -> AugmentedHop {
        let addr = Ipv4Addr::new(10, 0, 0, n);
        if labels.is_empty() {
            AugmentedHop::ip(addr)
        } else {
            AugmentedHop::labeled(addr, stack(labels))
        }
    }

    fn with_evidence(mut h: AugmentedHop, e: VendorEvidence) -> AugmentedHop {
        h.evidence = Some(e);
        h
    }

    fn silent() -> AugmentedHop {
        AugmentedHop {
            addr: None,
            stack: None,
            evidence: None,
            revealed: false,
            quoted_ip_ttl: None,
            is_destination: false,
        }
    }

    /// The detect.rs unit-test corpus, replayed through the arena:
    /// every nested result must be byte-identical.
    fn corpus() -> Vec<AugmentedTrace> {
        let t = |hops| AugmentedTrace::new("vp", Ipv4Addr::new(203, 0, 113, 1), hops);
        vec![
            t(vec![
                with_evidence(hop(1, &[16_005]), VendorEvidence::Exact(Vendor::Cisco)),
                hop(2, &[16_005]),
                hop(3, &[16_005]),
            ]),
            t(vec![hop(4, &[17_005]), hop(5, &[17_005]), hop(6, &[17_005])]),
            t(vec![
                with_evidence(hop(7, &[20_000, 37_000]), VendorEvidence::Exact(Vendor::Cisco)),
                hop(8, &[345_129]),
            ]),
            t(vec![with_evidence(hop(9, &[16_105]), VendorEvidence::Exact(Vendor::Cisco))]),
            t(vec![hop(10, &[345_100, 345_200])]),
            t(vec![hop(1, &[345_000])]),
            t(vec![hop(1, &[]), hop(2, &[]), hop(3, &[])]),
            t(vec![hop(1, &[16_005]), hop(2, &[13_005])]),
            t(vec![hop(1, &[17_000]), silent(), hop(3, &[17_000])]),
            t(vec![
                hop(1, &[]),
                hop(2, &[17_005]),
                hop(3, &[17_005]),
                hop(4, &[]),
                hop(5, &[600_000, 700_000]),
                with_evidence(hop(6, &[16_009]), VendorEvidence::CiscoOrHuawei),
            ]),
            t(vec![hop(1, &[600_000, 7, 412_345])]),
            t(vec![hop(1, &[600_000, 700_000, 7, 99_000])]),
            t(vec![
                AugmentedHop::labeled(Ipv4Addr::new(10, 0, 0, 1), LabelStack::new()), // empty stack
                hop(2, &[17_005]),
            ]),
            t(vec![]),
        ]
    }

    #[test]
    fn arena_round_trip_is_lossless() {
        let traces = corpus();
        let arena = AugmentedArena::from_traces(&traces);
        assert_eq!(arena.len(), traces.len());
        assert_eq!(arena.to_traces(), traces);
    }

    #[test]
    fn columnar_detection_is_identical_to_nested() {
        let traces = corpus();
        let arena = AugmentedArena::from_traces(&traces);
        for config in [
            DetectorConfig::default(),
            DetectorConfig { suffix_matching: false, ..Default::default() },
            DetectorConfig { min_sequence_len: 3, ..Default::default() },
            DetectorConfig { ignore_entropy_labels: false, ..Default::default() },
        ] {
            let nested: Vec<_> = traces.iter().map(|t| detect_segments(t, &config)).collect();
            assert_eq!(
                detect_segments_arena(&arena, &config),
                nested,
                "columnar and nested detection diverge under {config:?}"
            );
        }
    }

    #[test]
    fn empty_arena_detects_nothing() {
        let arena = AugmentedArena::new();
        assert!(arena.is_empty());
        assert_eq!(arena.hop_count(), 0);
        assert!(detect_segments_arena(&arena, &DetectorConfig::default()).is_empty());
        assert_eq!(arena.to_traces(), Vec::<AugmentedTrace>::new());
    }
}
