//! SR↔LDP interworking characterization (§7.2).
//!
//! A *tunnel* is a maximal run of MPLS-involved hops in a trace. Each
//! tunnel decomposes into *clouds* — contiguous SR or classic-MPLS
//! (LDP) stretches — whose ordering reveals the interworking mode:
//! the paper observes ≈90 % full-SR tunnels and, within the hybrid
//! 10 %, SR→LDP ≈95 %, LDP→SR ≈2 %, LDP-SR-LDP ≈2 %, SR-LDP-SR ≈1 %.

use crate::classify::{classify_areas, Area, AreaConfig};
use crate::detect::DetectedSegment;
use crate::model::AugmentedTrace;
use core::fmt;

/// What protocol a cloud runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CloudKind {
    /// An SR-MPLS stretch (strong-flag segments).
    Sr,
    /// A classic MPLS (LDP) stretch.
    Ldp,
}

/// One cloud inside a tunnel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cloud {
    /// The protocol of the stretch.
    pub kind: CloudKind,
    /// First hop index in the trace.
    pub start: usize,
    /// Last hop index (inclusive).
    pub end: usize,
}

impl Cloud {
    /// Number of hops in the cloud.
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Clouds are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The interworking pattern of one tunnel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InterworkingMode {
    /// Entirely SR.
    FullSr,
    /// Entirely classic MPLS (no SR involvement at all).
    FullLdp,
    /// SR first, then LDP (mapping-server scenario).
    SrToLdp,
    /// LDP first, then SR (border mirroring scenario).
    LdpToSr,
    /// LDP, SR, LDP.
    LdpSrLdp,
    /// SR, LDP, SR.
    SrLdpSr,
    /// Any longer alternation.
    Other,
}

impl fmt::Display for InterworkingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InterworkingMode::FullSr => "full-SR",
            InterworkingMode::FullLdp => "full-LDP",
            InterworkingMode::SrToLdp => "SR→LDP",
            InterworkingMode::LdpToSr => "LDP→SR",
            InterworkingMode::LdpSrLdp => "LDP-SR-LDP",
            InterworkingMode::SrLdpSr => "SR-LDP-SR",
            InterworkingMode::Other => "other",
        };
        write!(f, "{s}")
    }
}

/// One tunnel's decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TunnelAnalysis {
    /// The clouds, in path order.
    pub clouds: Vec<Cloud>,
    /// The derived interworking mode.
    pub mode: InterworkingMode,
}

impl TunnelAnalysis {
    /// Whether the tunnel involves SR at all.
    pub fn involves_sr(&self) -> bool {
        self.clouds.iter().any(|c| c.kind == CloudKind::Sr)
    }

    /// Whether the tunnel is a hybrid (SR and LDP both present).
    pub fn is_interworking(&self) -> bool {
        self.involves_sr() && self.clouds.iter().any(|c| c.kind == CloudKind::Ldp)
    }
}

/// Decomposes a trace's tunnels into clouds and interworking modes.
pub fn analyze_interworking(
    trace: &AugmentedTrace,
    segments: &[DetectedSegment],
    config: &AreaConfig,
) -> Vec<TunnelAnalysis> {
    let areas = classify_areas(trace, segments, config);
    let mut tunnels = Vec::new();
    let mut i = 0;
    while i < areas.len() {
        if areas[i] == Area::Ip {
            i += 1;
            continue;
        }
        // A tunnel: maximal non-IP run.
        let mut j = i;
        while j + 1 < areas.len() && areas[j + 1] != Area::Ip {
            j += 1;
        }
        // Decompose into clouds.
        let mut clouds: Vec<Cloud> = Vec::new();
        for (k, area) in areas.iter().enumerate().take(j + 1).skip(i) {
            let kind = match area {
                Area::Sr => CloudKind::Sr,
                Area::Mpls => CloudKind::Ldp,
                Area::Ip => unreachable!("run contains no IP hops"),
            };
            match clouds.last_mut() {
                Some(last) if last.kind == kind => last.end = k,
                _ => clouds.push(Cloud { kind, start: k, end: k }),
            }
        }
        let mode = derive_mode(&clouds);
        tunnels.push(TunnelAnalysis { clouds, mode });
        i = j + 1;
    }
    tunnels
}

fn derive_mode(clouds: &[Cloud]) -> InterworkingMode {
    let kinds: Vec<CloudKind> = clouds.iter().map(|c| c.kind).collect();
    match kinds.as_slice() {
        [CloudKind::Sr] => InterworkingMode::FullSr,
        [CloudKind::Ldp] => InterworkingMode::FullLdp,
        [CloudKind::Sr, CloudKind::Ldp] => InterworkingMode::SrToLdp,
        [CloudKind::Ldp, CloudKind::Sr] => InterworkingMode::LdpToSr,
        [CloudKind::Ldp, CloudKind::Sr, CloudKind::Ldp] => InterworkingMode::LdpSrLdp,
        [CloudKind::Sr, CloudKind::Ldp, CloudKind::Sr] => InterworkingMode::SrLdpSr,
        _ => InterworkingMode::Other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{detect_segments, DetectorConfig};
    use crate::model::AugmentedHop;
    use arest_wire::mpls::{Label, LabelStack};
    use std::net::Ipv4Addr;

    fn hop(n: u8, labels: &[u32]) -> AugmentedHop {
        let addr = Ipv4Addr::new(10, 0, 1, n);
        if labels.is_empty() {
            AugmentedHop::ip(addr)
        } else {
            let labels: Vec<Label> = labels.iter().map(|&v| Label::new(v).unwrap()).collect();
            AugmentedHop::labeled(addr, LabelStack::from_labels(&labels, 1))
        }
    }

    fn analyze(hops: Vec<AugmentedHop>) -> Vec<TunnelAnalysis> {
        let trace = AugmentedTrace::new("vp", Ipv4Addr::new(203, 0, 113, 1), hops);
        let segments = detect_segments(&trace, &DetectorConfig::default());
        analyze_interworking(&trace, &segments, &AreaConfig::default())
    }

    #[test]
    fn full_sr_tunnel() {
        let tunnels = analyze(vec![
            hop(1, &[]),
            hop(2, &[17_000]),
            hop(3, &[17_000]),
            hop(4, &[17_000]),
            hop(5, &[]),
        ]);
        assert_eq!(tunnels.len(), 1);
        assert_eq!(tunnels[0].mode, InterworkingMode::FullSr);
        assert!(tunnels[0].involves_sr());
        assert!(!tunnels[0].is_interworking());
        assert_eq!(tunnels[0].clouds[0].len(), 3);
    }

    #[test]
    fn sr_to_ldp_interworking() {
        // SR cloud (same label) then an LDP cloud (changing labels,
        // no flags).
        let tunnels = analyze(vec![
            hop(1, &[17_000]),
            hop(2, &[17_000]),
            hop(3, &[17_000]),
            hop(4, &[612_001]),
            hop(5, &[733_456]),
        ]);
        assert_eq!(tunnels.len(), 1);
        assert_eq!(tunnels[0].mode, InterworkingMode::SrToLdp);
        assert!(tunnels[0].is_interworking());
        let sizes: Vec<(CloudKind, usize)> =
            tunnels[0].clouds.iter().map(|c| (c.kind, c.len())).collect();
        assert_eq!(sizes, vec![(CloudKind::Sr, 3), (CloudKind::Ldp, 2)]);
    }

    #[test]
    fn ldp_to_sr_interworking() {
        let tunnels = analyze(vec![
            hop(1, &[612_001]),
            hop(2, &[733_456]),
            hop(3, &[17_000]),
            hop(4, &[17_000]),
        ]);
        assert_eq!(tunnels[0].mode, InterworkingMode::LdpToSr);
    }

    #[test]
    fn ldp_sr_ldp_chain() {
        let tunnels = analyze(vec![
            hop(1, &[612_001]),
            hop(2, &[733_456]),
            hop(3, &[17_000]),
            hop(4, &[17_000]),
            hop(5, &[841_990]),
            hop(6, &[452_010]),
        ]);
        assert_eq!(tunnels[0].mode, InterworkingMode::LdpSrLdp);
    }

    #[test]
    fn sr_ldp_sr_chain() {
        let tunnels = analyze(vec![
            hop(1, &[17_000]),
            hop(2, &[17_000]),
            hop(3, &[612_001]),
            hop(4, &[733_456]),
            hop(5, &[18_500]),
            hop(6, &[18_500]),
        ]);
        assert_eq!(tunnels[0].mode, InterworkingMode::SrLdpSr);
    }

    #[test]
    fn ip_gaps_split_tunnels() {
        let tunnels = analyze(vec![
            hop(1, &[17_000]),
            hop(2, &[17_000]),
            hop(3, &[]),
            hop(4, &[612_001]),
            hop(5, &[733_456]),
        ]);
        assert_eq!(tunnels.len(), 2);
        assert_eq!(tunnels[0].mode, InterworkingMode::FullSr);
        assert_eq!(tunnels[1].mode, InterworkingMode::FullLdp);
        assert!(!tunnels[1].involves_sr());
    }

    #[test]
    fn pure_ip_trace_has_no_tunnels() {
        assert!(analyze(vec![hop(1, &[]), hop(2, &[])]).is_empty());
    }
}
