//! The augmented-trace input format.
//!
//! AReST is a *post-processing* tool: its input is a traceroute path
//! where each hop may carry a quoted MPLS label stack (from TNT) and
//! a hardware-vendor fingerprint. This module is deliberately
//! independent of the measurement crates so AReST can classify traces
//! from any source — the simulator, a file, or (in the authors'
//! setting) a real campaign.

use arest_fingerprint::combined::VendorEvidence;
use arest_wire::mpls::{Label, LabelStack};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// One augmented hop.
#[derive(Debug, Clone, PartialEq)]
pub struct AugmentedHop {
    /// The replying address; `None` for a silent hop.
    pub addr: Option<Ipv4Addr>,
    /// The quoted MPLS label stack, top first, when the hop exposed
    /// one (explicit tunnels everywhere; opaque tunnels at the EH).
    /// Shared (`Arc`) with the raw trace it was augmented from, so
    /// augmentation never deep-clones stacks.
    pub stack: Option<Arc<LabelStack>>,
    /// Vendor knowledge from fingerprinting, when available.
    pub evidence: Option<VendorEvidence>,
    /// Whether TNT inserted this hop via hidden-tunnel revelation
    /// (these hops are MPLS but never carry an LSE).
    pub revealed: bool,
    /// The quoted IP TTL (qTTL) — values above 1 betray a
    /// ttl-propagating (implicit) tunnel even without LSEs.
    pub quoted_ip_ttl: Option<u8>,
    /// Whether this hop is the trace destination.
    pub is_destination: bool,
}

impl AugmentedHop {
    /// A plain IP hop at `addr`.
    pub fn ip(addr: Ipv4Addr) -> AugmentedHop {
        AugmentedHop {
            addr: Some(addr),
            stack: None,
            evidence: None,
            revealed: false,
            quoted_ip_ttl: Some(1),
            is_destination: false,
        }
    }

    /// A hop quoting a label stack.
    pub fn labeled(addr: Ipv4Addr, stack: impl Into<Arc<LabelStack>>) -> AugmentedHop {
        AugmentedHop { stack: Some(stack.into()), ..AugmentedHop::ip(addr) }
    }

    /// The top (active) label of the quoted stack, if any.
    pub fn top_label(&self) -> Option<Label> {
        self.stack.as_ref().and_then(|s| s.top()).map(|lse| lse.label)
    }

    /// Depth of the quoted stack (0 when none).
    pub fn stack_depth(&self) -> usize {
        self.stack.as_ref().map_or(0, |s| s.depth())
    }

    /// Whether the hop shows MPLS involvement of any kind (quoted
    /// stack, TNT revelation, or an implicit-tunnel qTTL signature).
    pub fn is_mpls(&self) -> bool {
        self.stack.is_some() || self.revealed || self.quoted_ip_ttl.is_some_and(|q| q > 1)
    }
}

/// One augmented trace, already restricted to the AS under study
/// (bdrmapIT-style annotation happens upstream).
#[derive(Debug, Clone, PartialEq)]
pub struct AugmentedTrace {
    /// Vantage point name (provenance), interned as in
    /// `arest_tnt::trace::Trace`.
    pub vp: Arc<str>,
    /// Probe destination.
    pub dst: Ipv4Addr,
    /// Hops in path order. The probing source router is *not* part of
    /// this list (segments exclude the source, §4).
    pub hops: Vec<AugmentedHop>,
}

impl AugmentedTrace {
    /// Creates a trace.
    pub fn new(vp: impl Into<Arc<str>>, dst: Ipv4Addr, hops: Vec<AugmentedHop>) -> AugmentedTrace {
        AugmentedTrace { vp: vp.into(), dst, hops }
    }

    /// Responding addresses in path order.
    pub fn addrs(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.hops.iter().filter_map(|h| h.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack(labels: &[u32], ttl: u8) -> LabelStack {
        let labels: Vec<Label> = labels.iter().map(|&v| Label::new(v).unwrap()).collect();
        LabelStack::from_labels(&labels, ttl)
    }

    #[test]
    fn hop_constructors_and_accessors() {
        let ip = AugmentedHop::ip(Ipv4Addr::new(10, 0, 0, 1));
        assert!(!ip.is_mpls());
        assert_eq!(ip.stack_depth(), 0);
        assert!(ip.top_label().is_none());

        let labeled = AugmentedHop::labeled(Ipv4Addr::new(10, 0, 0, 2), stack(&[16_005, 99], 1));
        assert!(labeled.is_mpls());
        assert_eq!(labeled.stack_depth(), 2);
        assert_eq!(labeled.top_label().unwrap().value(), 16_005);
    }

    #[test]
    fn revealed_and_qttl_hops_count_as_mpls() {
        let mut revealed = AugmentedHop::ip(Ipv4Addr::new(10, 0, 0, 3));
        revealed.revealed = true;
        assert!(revealed.is_mpls());

        let mut implicit = AugmentedHop::ip(Ipv4Addr::new(10, 0, 0, 4));
        implicit.quoted_ip_ttl = Some(3);
        assert!(implicit.is_mpls());
    }

    #[test]
    fn trace_addrs_skips_silent() {
        let silent = AugmentedHop {
            addr: None,
            stack: None,
            evidence: None,
            revealed: false,
            quoted_ip_ttl: None,
            is_destination: false,
        };
        let trace = AugmentedTrace::new(
            "vp",
            Ipv4Addr::new(203, 0, 113, 1),
            vec![AugmentedHop::ip(Ipv4Addr::new(10, 0, 0, 1)), silent],
        );
        assert_eq!(trace.addrs().count(), 1);
    }
}
