//! Property proof of the columnar detector's defining contract: over
//! *arbitrary* augmented traces (silent hops, entropy stacks, mixed
//! evidence, empty traces), `detect_segments_arena` is byte-identical
//! to the nested `detect_segments` — flags, spans, labels, and the
//! full provenance chains — under every detector configuration.

use arest_core::columnar::{detect_segments_arena, AugmentedArena};
use arest_core::detect::{detect_segments, DetectorConfig};
use arest_core::model::{AugmentedHop, AugmentedTrace};
use arest_fingerprint::combined::VendorEvidence;
use arest_topo::vendor::Vendor;
use arest_wire::mpls::{Label, LabelStack};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn hop_strategy() -> impl Strategy<Value = AugmentedHop> {
    (
        any::<u32>(),
        prop::option::of(prop::collection::vec(0u32..=1_048_575, 0..4)),
        prop::option::of(0usize..4),
        any::<bool>(),
        prop::option::of(1u8..10),
        prop::bool::weighted(0.1),
        any::<bool>(),
    )
        .prop_map(|(addr, labels, evidence, revealed, qttl, silent, is_destination)| {
            let evidence = evidence.and_then(|e| match e {
                0 => Some(VendorEvidence::Exact(Vendor::Cisco)),
                1 => Some(VendorEvidence::Exact(Vendor::Juniper)),
                2 => Some(VendorEvidence::CiscoOrHuawei),
                _ => None,
            });
            AugmentedHop {
                addr: (!silent).then(|| Ipv4Addr::from(addr)),
                stack: labels.map(|ls| {
                    let labels: Vec<Label> =
                        ls.into_iter().map(|l| Label::new(l).unwrap()).collect();
                    std::sync::Arc::new(LabelStack::from_labels(&labels, 1))
                }),
                evidence,
                revealed,
                quoted_ip_ttl: qttl,
                is_destination,
            }
        })
}

fn traces_strategy() -> impl Strategy<Value = Vec<AugmentedTrace>> {
    prop::collection::vec(
        prop::collection::vec(hop_strategy(), 0..24)
            .prop_map(|hops| AugmentedTrace::new("prop", Ipv4Addr::new(203, 0, 113, 1), hops)),
        0..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn columnar_detection_matches_nested_exactly(traces in traces_strategy()) {
        let arena = AugmentedArena::from_traces(&traces);
        prop_assert_eq!(&arena.to_traces(), &traces, "augmented round trip must be lossless");
        for config in [
            DetectorConfig::default(),
            DetectorConfig { suffix_matching: false, ..Default::default() },
            DetectorConfig { min_sequence_len: 3, ..Default::default() },
            DetectorConfig { ignore_entropy_labels: false, ..Default::default() },
        ] {
            let nested: Vec<_> = traces.iter().map(|t| detect_segments(t, &config)).collect();
            prop_assert_eq!(
                detect_segments_arena(&arena, &config),
                nested,
                "columnar and nested detection diverge under {:?}",
                config
            );
        }
    }
}
