//! Regression test: a **disabled** registry adds no allocations on the
//! simnet hot path.
//!
//! The instrumented `Network::probe` must cost nothing when
//! observability is off — the promise that lets the instrumentation
//! live permanently in the forwarding engine. This test installs a
//! counting `GlobalAlloc` (the sole `unsafe` in the workspace, hence
//! this crate's `deny`-not-`forbid` lint level and the file-local
//! allow below), warms up every lazy registration, and then asserts:
//!
//! 1. recording against disabled handles performs **zero** allocations;
//! 2. a probe loop allocates exactly as much with observability
//!    enabled as disabled — the handles never allocate after
//!    registration, enabled or not.

#![allow(unsafe_code)]

use arest_simnet::network::Network;
use arest_simnet::packet::{ProbeReply, ProbeSpec, TransportPayload};
use arest_topo::graph::Topology;
use arest_topo::ids::{AsNumber, RouterId};
use arest_topo::prefix::Prefix;
use arest_topo::vendor::Vendor;
use std::alloc::{GlobalAlloc, Layout, System};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation while delegating to the system allocator.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure delegation to `System`; the only addition is a relaxed
// counter increment, which cannot violate any allocator contract.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `measure` up to five times and returns the smallest allocation
/// delta observed. The test harness's main thread occasionally
/// allocates a couple of times while a measured loop runs; a genuine
/// per-call allocation in the measured code shows up in *every*
/// attempt at loop scale, while harness noise is transient — the
/// minimum over a few attempts isolates the former.
fn min_allocations<F: FnMut()>(mut measure: F) -> u64 {
    (0..5)
        .map(|_| {
            let before = allocations();
            measure();
            allocations() - before
        })
        .min()
        .expect("at least one attempt")
}

/// A 4-router IP chain with host routes toward every loopback.
fn chain_network() -> (Network, Vec<RouterId>, Ipv4Addr) {
    let mut topo = Topology::new();
    let asn = AsNumber(65_100);
    let routers: Vec<RouterId> = (0..4)
        .map(|i| {
            topo.add_router(
                format!("r{i}"),
                asn,
                Vendor::Cisco,
                Ipv4Addr::new(10, 255, 10, (i + 1) as u8),
            )
        })
        .collect();
    for i in 0..routers.len() - 1 {
        topo.add_link(
            routers[i],
            Ipv4Addr::new(10, 10, i as u8, 1),
            routers[i + 1],
            Ipv4Addr::new(10, 10, i as u8, 2),
            1,
        );
    }
    let target = topo.router(routers[3]).loopback;
    let spf = arest_topo::spf::DomainSpf::for_as(&topo, asn);
    let loopbacks: Vec<(RouterId, Ipv4Addr)> =
        routers.iter().map(|&r| (r, topo.router(r).loopback)).collect();
    let mut net = Network::new(topo);
    for &from in &routers {
        for &(to, lo) in &loopbacks {
            if from == to {
                continue;
            }
            if let Some((out_iface, next_router)) = spf.next_hop(from, to) {
                net.plane_mut(from).install_route(
                    Prefix::host(lo),
                    arest_simnet::plane::Route { out_iface, next_router },
                );
            }
        }
    }
    (net, routers, target)
}

fn probe(net: &Network, entry: RouterId, dst: Ipv4Addr, ttl: u8) -> ProbeReply {
    net.probe(&ProbeSpec {
        entry,
        src: Ipv4Addr::new(192, 0, 2, 1),
        dst,
        ttl,
        transport: TransportPayload::Udp { src_port: 33_434, dst_port: 33_434, ident: 7 },
    })
}

/// Runs one full pseudo-traceroute (TTL 1..=5) and returns the number
/// of allocations it performed.
fn allocations_per_trace(net: &Network, entry: RouterId, dst: Ipv4Addr) -> u64 {
    let before = allocations();
    for ttl in 1..=5u8 {
        let _ = probe(net, entry, dst, ttl);
    }
    allocations() - before
}

/// One test function on purpose: the harness runs `#[test]`s in
/// parallel, and a second thread's allocations would bleed into the
/// counters measured here.
#[test]
fn disabled_observability_adds_no_allocations_to_the_probe_path() {
    // This test binary runs in its own process; nothing else touches
    // the global registry, and AREST_OBS is not set under `cargo test`
    // (tools/check.sh runs the instrumented builds separately).
    let registry = arest_obs::global();
    registry.set_enabled(false);

    let (net, routers, target) = chain_network();

    // Warm-up: the first probe initialises the simnet metrics
    // `LazyLock` (registration allocates, once per process) and any
    // lazily-built reply buffers.
    let _ = allocations_per_trace(&net, routers[0], target);

    // 1. Disabled handles alone: strictly zero allocations.
    let counter = registry.counter("no_alloc.test.counter");
    let histogram = registry.histogram("no_alloc.test.histogram");
    let gauge = registry.gauge("no_alloc.test.gauge");
    let metric_allocs = min_allocations(|| {
        for i in 0..100_000u64 {
            counter.inc();
            counter.add(3);
            gauge.add(1);
            gauge.set(-4);
            histogram.record(i);
            drop(registry.timer("no_alloc.test.timer.us"));
        }
    });
    assert_eq!(metric_allocs, 0, "disabled metric handles must never allocate");

    // 1b. Disabled spans: creation, field recording (including the
    // String-producing conversions, which must stay lazy), child
    // spans, context extraction, and drop — all strictly zero
    // allocations while the gate is off.
    let tracer = registry.tracer();
    drop(tracer.span("no_alloc.warmup")); // warm the tracer handle path
    let span_allocs = min_allocations(|| {
        for i in 0..100_000u64 {
            let mut span = tracer.span("no_alloc.test.span");
            span.record("iteration", i);
            span.record("label", "static text");
            span.record("flag", true);
            let context = span.context();
            let mut child = tracer.span_with_parent("no_alloc.test.child", context);
            child.record("parent_active", context.is_active());
            drop(child.child("no_alloc.test.grandchild"));
        }
    });
    assert_eq!(span_allocs, 0, "disabled spans must never allocate");
    assert!(tracer.take_records().is_empty(), "disabled spans must record nothing");

    // 2. The probe path costs the same with observability on or off:
    // after warm-up, recording is atomics only. Each side takes the
    // minimum over a few runs for the same harness-noise reason.
    let disabled_cost = min_allocations(|| {
        let _ = allocations_per_trace(&net, routers[0], target);
    });
    registry.set_enabled(true);
    let _ = allocations_per_trace(&net, routers[0], target); // warm enabled paths
    let enabled_cost = min_allocations(|| {
        let _ = allocations_per_trace(&net, routers[0], target);
    });
    registry.set_enabled(false);
    assert_eq!(disabled_cost, enabled_cost, "instrumentation must not allocate on the probe path");

    // Sanity: the enabled window actually recorded probes.
    let snap = registry.snapshot();
    assert!(snap.counter("simnet.probes") >= 10, "snapshot: {:?}", snap.counters);
}
