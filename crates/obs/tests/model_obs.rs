//! Exhaustive model checks of the registry's concurrent recording
//! paths (`cargo test -p arest-obs --features model-check`).

#![cfg(feature = "model-check")]

use arest_conc::model::Model;
use arest_obs::Registry;

/// Invariant: increments racing from two threads all land — the
/// counter cell is a single atomic, never read-modify-write split.
#[test]
fn model_concurrent_counter_increments_all_land() {
    let report = Model::default().check(|| {
        let registry = Registry::new();
        let counter = registry.counter("c");
        arest_conc::thread::scope(|scope| {
            for _ in 0..2 {
                let counter = counter.clone();
                scope.spawn(move || {
                    counter.inc();
                    counter.add(2);
                });
            }
        });
        assert_eq!(counter.get(), 6, "every racing increment must land");
    });
    assert!(report.complete, "schedule space not exhausted in {} runs", report.runs);
}

/// Invariant: `Gauge::set_max` is a true high-watermark under racing
/// writers — whichever interleaving runs, the gauge ends at the
/// maximum of all recorded values, never at a later-but-lower one.
#[test]
fn model_gauge_set_max_is_a_high_watermark_under_races() {
    let report = Model::default().check(|| {
        let registry = Registry::new();
        let gauge = registry.gauge("peak");
        arest_conc::thread::scope(|scope| {
            let g1 = gauge.clone();
            scope.spawn(move || g1.set_max(3));
            let g2 = gauge.clone();
            scope.spawn(move || g2.set_max(7));
        });
        assert_eq!(gauge.get(), 7, "the watermark must settle at the maximum");
    });
    assert!(report.complete, "schedule space not exhausted in {} runs", report.runs);
}

/// Invariant: registering the same name from two threads yields one
/// shared cell (the registry lock serializes first-use registration),
/// so both handles' increments accumulate together.
#[test]
fn model_racing_registration_returns_one_cell() {
    let report = Model::default().check(|| {
        let registry = Registry::new();
        arest_conc::thread::scope(|scope| {
            let r1 = &registry;
            scope.spawn(move || r1.counter("same").inc());
            let r2 = &registry;
            scope.spawn(move || r2.counter("same").inc());
        });
        assert_eq!(registry.counter("same").get(), 2, "both handles share one cell");
    });
    assert!(report.complete, "schedule space not exhausted in {} runs", report.runs);
}
