//! Hierarchical spans with explicit cross-thread context propagation.
//!
//! A [`Span`] is a named, timed scope with optional key/value fields,
//! arranged into a tree through parent ids. Spans are created through
//! a [`Tracer`] handle (obtained from [`crate::Registry::tracer`]) and
//! recorded — at *drop* time, when the duration is known — into a
//! sharded bounded ring buffer inside the owning registry.
//!
//! The same enabled gate that guards the metric primitives guards
//! spans: **when the registry is disabled, creating a span performs no
//! allocation and never reads the clock** — it returns an inert
//! handle whose `record`/`child`/drop are no-ops. Field values are
//! converted lazily (see [`IntoFieldValue`]), so even passing a
//! `&str` field to a disabled span allocates nothing.
//!
//! ## Cross-worker propagation
//!
//! A [`SpanContext`] is a `Copy` token naming a span. It exists so a
//! parent/child edge can cross a thread boundary explicitly: the
//! submitting thread captures `span.context()` into a work unit, and
//! whichever pool worker steals the unit opens its own span with
//! [`Tracer::span_with_parent`]. The `arest_tnt` campaign scheduler
//! uses exactly this to keep an `(AS, VP)` unit parented under its
//! campaign span no matter which worker ran it.
//!
//! ## Bounds
//!
//! Finished spans land in one of [`TRACE_SHARDS`] rings (picked by
//! span id, so concurrent workers rarely contend on one lock). Each
//! ring is bounded; when full, the **oldest** record in that shard is
//! evicted and counted in [`Tracer::dropped`]. The default total
//! capacity is [`DEFAULT_TRACE_CAPACITY`] spans
//! ([`crate::Registry::set_trace_capacity`] resizes it).
//!
//! ```
//! use arest_obs::Registry;
//!
//! let registry = Registry::new();
//! let tracer = registry.tracer();
//! let mut campaign = tracer.span("campaign");
//! campaign.record("asn", 65_001_u64);
//! let ctx = campaign.context(); // Copy — send it to a worker
//! {
//!     let mut unit = tracer.span_with_parent("campaign.unit", ctx);
//!     unit.record("vp", "vp-a");
//! } // unit recorded here
//! drop(campaign);
//! let records = tracer.take_records();
//! assert_eq!(records.len(), 2);
//! assert_eq!(records[1].parent, records[0].id);
//! ```

use arest_conc::atomic::{AtomicU64, AtomicUsize, Ordering};
use arest_conc::sync::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::hash::{Hash as _, Hasher as _};
// The gate is deliberately a std atomic — see the note in `metrics.rs`.
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

/// Number of independent ring-buffer shards finished spans land in.
pub const TRACE_SHARDS: usize = 8;

/// Default total span capacity across all shards. Oldest records are
/// evicted (and counted) past this bound.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// One span field value. Kept as a small enum (not a string) so
/// numeric fields render naturally in the exporters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => f.write_str(v),
        }
    }
}

/// Lazy conversion into a [`FieldValue`].
///
/// [`Span::record`] takes `impl IntoFieldValue` and only performs the
/// conversion when the span is actually recording — the trait is what
/// keeps `span.record("vp", name)` allocation-free on a disabled
/// registry even for string values.
pub trait IntoFieldValue {
    /// Performs the conversion.
    fn into_field_value(self) -> FieldValue;
}

impl IntoFieldValue for FieldValue {
    fn into_field_value(self) -> FieldValue {
        self
    }
}

impl IntoFieldValue for u64 {
    fn into_field_value(self) -> FieldValue {
        FieldValue::U64(self)
    }
}

impl IntoFieldValue for u32 {
    fn into_field_value(self) -> FieldValue {
        FieldValue::U64(u64::from(self))
    }
}

impl IntoFieldValue for usize {
    fn into_field_value(self) -> FieldValue {
        FieldValue::U64(self as u64)
    }
}

impl IntoFieldValue for i64 {
    fn into_field_value(self) -> FieldValue {
        FieldValue::I64(self)
    }
}

impl IntoFieldValue for bool {
    fn into_field_value(self) -> FieldValue {
        FieldValue::Bool(self)
    }
}

impl IntoFieldValue for &str {
    fn into_field_value(self) -> FieldValue {
        FieldValue::Str(self.to_string())
    }
}

impl IntoFieldValue for String {
    fn into_field_value(self) -> FieldValue {
        FieldValue::Str(self)
    }
}

impl IntoFieldValue for std::net::Ipv4Addr {
    fn into_field_value(self) -> FieldValue {
        FieldValue::Str(self.to_string())
    }
}

/// One finished span, as stored in the ring buffer and consumed by
/// the exporters ([`to_chrome_trace`](crate::to_chrome_trace),
/// [`to_flamegraph`](crate::to_flamegraph), [`SpanTree`](crate::SpanTree)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id (never 0).
    pub id: u64,
    /// Parent span id; 0 for a root span.
    pub parent: u64,
    /// Span name (static, dot-separated like metric names).
    pub name: &'static str,
    /// Key/value fields in the order they were recorded.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Start time, microseconds since the tracer's epoch.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub duration_us: u64,
    /// A stable hash of the thread that *opened* the span — the
    /// worker that did the work, under work stealing.
    pub tid: u64,
}

/// A `Copy` token naming a span, for explicit parent/child edges
/// across thread (pool work-unit) boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    pub(crate) id: u64,
}

impl SpanContext {
    /// The absent context: spans opened under it are roots.
    pub const NONE: SpanContext = SpanContext { id: 0 };

    /// Whether this context names a live recording span (false for
    /// [`SpanContext::NONE`] and for contexts of inert spans).
    #[must_use]
    pub fn is_active(self) -> bool {
        self.id != 0
    }
}

/// The per-registry span sink: id allocator plus the sharded rings.
#[derive(Debug)]
pub(crate) struct TracerCore {
    gate: Arc<AtomicBool>,
    epoch: Instant,
    next_id: AtomicU64,
    shards: Vec<Mutex<VecDeque<SpanRecord>>>,
    shard_capacity: AtomicUsize,
    dropped: AtomicU64,
}

impl TracerCore {
    pub(crate) fn new(gate: Arc<AtomicBool>) -> TracerCore {
        TracerCore {
            gate,
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            shards: (0..TRACE_SHARDS).map(|_| Mutex::new(VecDeque::new())).collect(),
            shard_capacity: AtomicUsize::new(DEFAULT_TRACE_CAPACITY / TRACE_SHARDS),
            dropped: AtomicU64::new(0),
        }
    }

    pub(crate) fn set_capacity(&self, total: usize) {
        self.shard_capacity.store(total.div_ceil(TRACE_SHARDS).max(1), Ordering::Relaxed);
    }

    fn push(&self, record: SpanRecord) {
        let shard = &self.shards[(record.id % TRACE_SHARDS as u64) as usize];
        let mut ring = shard.lock().expect("tracer shard lock");
        if ring.len() >= self.shard_capacity.load(Ordering::Relaxed) {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
    }
}

/// A cheap, clonable handle for opening spans against one registry.
///
/// Obtained from [`crate::Registry::tracer`]; every clone shares the
/// registry's gate, id allocator, and ring buffers.
#[derive(Debug, Clone)]
pub struct Tracer {
    pub(crate) core: Arc<TracerCore>,
}

impl Tracer {
    /// Opens a root span. Inert (no allocation, no clock read) when
    /// the registry is disabled.
    #[must_use]
    pub fn span(&self, name: &'static str) -> Span {
        self.span_with_parent(name, SpanContext::NONE)
    }

    /// Opens a span parented under `parent` — the cross-worker form:
    /// `parent` may have been captured on another thread. Inert when
    /// the registry is disabled.
    #[must_use]
    pub fn span_with_parent(&self, name: &'static str, parent: SpanContext) -> Span {
        if !self.core.gate.load(Ordering::Relaxed) {
            return Span { inner: None };
        }
        let core = Arc::clone(&self.core);
        let id = core.next_id.fetch_add(1, Ordering::Relaxed);
        let start_us = u64::try_from(core.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        Span {
            inner: Some(SpanInner {
                core,
                id,
                parent: parent.id,
                name,
                fields: Vec::new(),
                started: Instant::now(),
                start_us,
                tid: current_tid(),
            }),
        }
    }

    /// Drains every finished span out of the ring buffers, ordered by
    /// `(start_us, id)`. The buffers are empty afterwards; spans still
    /// open keep recording into the (now empty) rings when they drop.
    #[must_use]
    pub fn take_records(&self) -> Vec<SpanRecord> {
        let mut records: Vec<SpanRecord> = Vec::new();
        for shard in &self.core.shards {
            records.extend(shard.lock().expect("tracer shard lock").drain(..));
        }
        records.sort_by_key(|r| (r.start_us, r.id));
        records
    }

    /// Total spans evicted from full shards since the registry was
    /// created (or since the capacity last allowed everything).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.core.dropped.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct SpanInner {
    core: Arc<TracerCore>,
    id: u64,
    parent: u64,
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
    started: Instant,
    start_us: u64,
    tid: u64,
}

/// A live span: recorded into the ring buffer when dropped.
///
/// Inert when created against a disabled registry — every method is
/// then a no-op and the drop does nothing.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// An always-inert span, for plumbing default arguments.
    #[must_use]
    pub fn inert() -> Span {
        Span { inner: None }
    }

    /// This span's context token ([`SpanContext::NONE`] when inert) —
    /// `Copy`, so it can ride inside pool work units.
    #[must_use]
    pub fn context(&self) -> SpanContext {
        SpanContext { id: self.inner.as_ref().map_or(0, |i| i.id) }
    }

    /// Whether the span will produce a record.
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches a key/value field. The value conversion only happens
    /// when the span is recording (see [`IntoFieldValue`]).
    pub fn record(&mut self, key: &'static str, value: impl IntoFieldValue) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, value.into_field_value()));
        }
    }

    /// Opens a same-thread child span (inert children of inert
    /// parents; use [`Tracer::span_with_parent`] to cross threads).
    #[must_use]
    pub fn child(&self, name: &'static str) -> Span {
        match &self.inner {
            Some(inner) => {
                Tracer { core: Arc::clone(&inner.core) }.span_with_parent(name, self.context())
            }
            None => Span { inner: None },
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        let duration_us = u64::try_from(inner.started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let record = SpanRecord {
            id: inner.id,
            parent: inner.parent,
            name: inner.name,
            fields: inner.fields,
            start_us: inner.start_us,
            duration_us,
            tid: inner.tid,
        };
        inner.core.push(record);
    }
}

/// A stable per-thread id: `ThreadId` hashed down to a `u64` (the
/// numeric accessor is unstable). Collisions only blur exporter lane
/// assignment, never correctness.
fn current_tid() -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn disabled_registry_yields_inert_spans() {
        let registry = Registry::disabled();
        let tracer = registry.tracer();
        let mut span = tracer.span("root");
        span.record("k", 1_u64);
        assert!(!span.is_recording());
        assert!(!span.context().is_active());
        let child = span.child("child");
        assert!(!child.is_recording());
        drop(child);
        drop(span);
        assert!(tracer.take_records().is_empty());
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn spans_record_parentage_fields_and_order() {
        let registry = Registry::new();
        let tracer = registry.tracer();
        let mut root = tracer.span("root");
        root.record("asn", 65_001_u64);
        root.record("vp", "vp-a");
        let child = root.child("child");
        let grandchild = child.child("grandchild");
        drop(grandchild);
        drop(child);
        drop(root);

        let records = tracer.take_records();
        assert_eq!(records.len(), 3);
        let root = records.iter().find(|r| r.name == "root").unwrap();
        let child = records.iter().find(|r| r.name == "child").unwrap();
        let grandchild = records.iter().find(|r| r.name == "grandchild").unwrap();
        assert_eq!(root.parent, 0);
        assert_eq!(child.parent, root.id);
        assert_eq!(grandchild.parent, child.id);
        assert_eq!(
            root.fields,
            vec![("asn", FieldValue::U64(65_001)), ("vp", FieldValue::Str("vp-a".into()))]
        );
        assert!(records.windows(2).all(|w| (w[0].start_us, w[0].id) <= (w[1].start_us, w[1].id)));
    }

    #[test]
    fn take_records_drains() {
        let registry = Registry::new();
        let tracer = registry.tracer();
        drop(tracer.span("a"));
        assert_eq!(tracer.take_records().len(), 1);
        assert!(tracer.take_records().is_empty(), "second take sees an empty ring");
    }

    #[test]
    fn context_crosses_threads() {
        let registry = Registry::new();
        let tracer = registry.tracer();
        let parent = tracer.span("campaign");
        let ctx = parent.context();
        arest_conc::thread::scope(|scope| {
            for _ in 0..4 {
                let tracer = tracer.clone();
                scope.spawn(move || {
                    let mut unit = tracer.span_with_parent("campaign.unit", ctx);
                    unit.record("stolen", true);
                });
            }
        });
        drop(parent);
        let records = tracer.take_records();
        let parent_id = records.iter().find(|r| r.name == "campaign").unwrap().id;
        let units: Vec<_> = records.iter().filter(|r| r.name == "campaign.unit").collect();
        assert_eq!(units.len(), 4);
        assert!(units.iter().all(|u| u.parent == parent_id), "stolen units stay parented");
    }

    #[test]
    fn full_shards_evict_oldest_and_count_drops() {
        let registry = Registry::new();
        registry.set_trace_capacity(TRACE_SHARDS * 4); // 4 per shard
        let tracer = registry.tracer();
        for _ in 0..TRACE_SHARDS * 6 {
            drop(tracer.span("s"));
        }
        let records = tracer.take_records();
        assert_eq!(records.len(), TRACE_SHARDS * 4, "rings stay bounded");
        assert_eq!(tracer.dropped(), (TRACE_SHARDS * 2) as u64);
        // Oldest evicted: the survivors are the latest ids.
        let min_id = records.iter().map(|r| r.id).min().unwrap();
        assert!(min_id > TRACE_SHARDS as u64, "early spans were evicted first");
    }

    #[test]
    fn enabling_mid_stream_gates_at_creation() {
        let registry = Registry::disabled();
        let tracer = registry.tracer();
        let inert = tracer.span("before");
        registry.set_enabled(true);
        let live = tracer.span("after");
        drop(inert);
        drop(live);
        let records = tracer.take_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "after");
    }

    #[test]
    fn field_value_display() {
        assert_eq!(FieldValue::U64(7).to_string(), "7");
        assert_eq!(FieldValue::I64(-7).to_string(), "-7");
        assert_eq!(FieldValue::Bool(true).to_string(), "true");
        assert_eq!(FieldValue::Str("x".into()).to_string(), "x");
        assert_eq!(std::net::Ipv4Addr::new(10, 0, 0, 1).into_field_value().to_string(), "10.0.0.1");
    }
}
