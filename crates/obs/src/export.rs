//! Span exporters: Chrome trace-event JSON, collapsed-stack
//! flamegraph text, and the span-tree reconstructor both build on.
//!
//! * [`to_chrome_trace`] emits the [Trace Event Format] (`"X"`
//!   complete events, microsecond timestamps) — load the file in
//!   Perfetto or `chrome://tracing` to see per-worker lanes of the
//!   measurement pipeline.
//! * [`to_flamegraph`] emits collapsed stacks (`a;b;c <self-µs>`
//!   lines), the input format of Brendan Gregg's `flamegraph.pl` and
//!   of `inferno-flamegraph`.
//! * [`SpanTree`] rebuilds the parent/child hierarchy from flat
//!   [`SpanRecord`]s, tolerating evicted parents (orphans become
//!   roots), and renders a timing-free [`SpanTree::structure`] used by
//!   the determinism tests.
//!
//! Everything is hand-rolled string building, like the rest of the
//! suite — no serde.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::tracing::SpanRecord;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Renders finished spans as Chrome trace-event JSON: one `"X"`
/// (complete) event per span, `ts`/`dur` in microseconds, `tid` the
/// recording worker thread, and the span id/parent plus every field
/// under `args`.
#[must_use]
pub fn to_chrome_trace(records: &[SpanRecord]) -> String {
    // Compact thread ids (hashes) into small lane numbers, in order
    // of first appearance, so the viewer shows "worker 0..n" lanes.
    let mut lanes: HashMap<u64, usize> = HashMap::new();
    for record in records {
        let next = lanes.len();
        lanes.entry(record.tid).or_insert(next);
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, record) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{{\"name\":{},\"cat\":\"arest\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{}",
            json_string(record.name),
            record.start_us,
            record.duration_us,
            lanes[&record.tid],
        );
        out.push_str(",\"args\":{");
        let _ = write!(out, "\"span_id\":{},\"parent_id\":{}", record.id, record.parent);
        // JSON objects want unique keys; repeated field keys (e.g. one
        // "detection" per segment) get a numeric suffix.
        let mut seen: HashMap<&str, usize> = HashMap::new();
        for (key, value) in &record.fields {
            let n = seen.entry(key).or_insert(0);
            *n += 1;
            let unique = if *n == 1 { (*key).to_string() } else { format!("{key}#{n}") };
            let _ = write!(out, ",{}:{}", json_string(&unique), json_field(value));
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

fn json_field(value: &crate::tracing::FieldValue) -> String {
    use crate::tracing::FieldValue;
    match value {
        FieldValue::U64(v) => v.to_string(),
        FieldValue::I64(v) => v.to_string(),
        FieldValue::Bool(v) => v.to_string(),
        FieldValue::Str(v) => json_string(v),
    }
}

/// JSON string literal with the mandatory escapes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders finished spans as collapsed flamegraph stacks: one
/// `root;child;leaf <weight>` line per distinct name path, weighted
/// by *self* time (span duration minus its children's), aggregated
/// and sorted lexicographically.
#[must_use]
pub fn to_flamegraph(records: &[SpanRecord]) -> String {
    let tree = SpanTree::build(records.to_vec());
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for root in &tree.roots {
        collapse_into(root, String::new(), &mut stacks);
    }
    let mut out = String::new();
    for (stack, weight) in &stacks {
        let _ = writeln!(out, "{stack} {weight}");
    }
    out
}

fn collapse_into(node: &SpanNode, prefix: String, stacks: &mut BTreeMap<String, u64>) {
    let path = if prefix.is_empty() {
        node.record.name.to_string()
    } else {
        format!("{prefix};{}", node.record.name)
    };
    let children_us: u64 = node.children.iter().map(|c| c.record.duration_us).sum();
    let self_us = node.record.duration_us.saturating_sub(children_us);
    *stacks.entry(path.clone()).or_insert(0) += self_us;
    for child in &node.children {
        collapse_into(child, path.clone(), stacks);
    }
}

/// One node of a reconstructed span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span itself.
    pub record: SpanRecord,
    /// Children ordered by `(start_us, id)`.
    pub children: Vec<SpanNode>,
}

/// A reconstructed span forest.
#[derive(Debug, Clone)]
pub struct SpanTree {
    /// Root spans ordered by `(start_us, id)`. A span whose parent
    /// record is missing (evicted from a full ring) is promoted to a
    /// root and counted in [`SpanTree::orphans`].
    pub roots: Vec<SpanNode>,
    /// Spans whose recorded parent was not among the input records.
    pub orphans: usize,
}

impl SpanTree {
    /// Rebuilds the hierarchy from flat records (any order).
    #[must_use]
    pub fn build(records: Vec<SpanRecord>) -> SpanTree {
        let known: HashMap<u64, ()> = records.iter().map(|r| (r.id, ())).collect();
        let mut children_of: HashMap<u64, Vec<SpanRecord>> = HashMap::new();
        let mut top: Vec<SpanRecord> = Vec::new();
        let mut orphans = 0;
        for record in records {
            if record.parent == 0 {
                top.push(record);
            } else if known.contains_key(&record.parent) {
                children_of.entry(record.parent).or_default().push(record);
            } else {
                orphans += 1;
                top.push(record);
            }
        }
        top.sort_by_key(|r| (r.start_us, r.id));
        let roots = top.into_iter().map(|r| assemble(r, &mut children_of)).collect();
        SpanTree { roots, orphans }
    }

    /// Total number of spans in the forest.
    #[must_use]
    pub fn len(&self) -> usize {
        fn count(node: &SpanNode) -> usize {
            1 + node.children.iter().map(count).sum::<usize>()
        }
        self.roots.iter().map(count).sum()
    }

    /// Whether the forest holds no spans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// A canonical, timing-free rendering of the forest's *shape*:
    /// span names and parentage only, with siblings sorted by their
    /// own structural key. Two runs of the same workload produce the
    /// same structure regardless of worker count or scheduling — the
    /// property the span-propagation determinism test pins.
    #[must_use]
    pub fn structure(&self) -> String {
        let mut parts: Vec<String> = self.roots.iter().map(structural_key).collect();
        parts.sort_unstable();
        parts.join("\n")
    }

    /// An indented human-readable rendering (names, fields, µs).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for root in &self.roots {
            render_text(root, 0, &mut out);
        }
        out
    }
}

fn assemble(record: SpanRecord, children_of: &mut HashMap<u64, Vec<SpanRecord>>) -> SpanNode {
    let mut children_records = children_of.remove(&record.id).unwrap_or_default();
    children_records.sort_by_key(|r| (r.start_us, r.id));
    let children = children_records.into_iter().map(|r| assemble(r, children_of)).collect();
    SpanNode { record, children }
}

fn structural_key(node: &SpanNode) -> String {
    let mut keys: Vec<String> = node.children.iter().map(structural_key).collect();
    keys.sort_unstable();
    if keys.is_empty() {
        node.record.name.to_string()
    } else {
        format!("{}({})", node.record.name, keys.join(","))
    }
}

fn render_text(node: &SpanNode, depth: usize, out: &mut String) {
    let _ = write!(out, "{}{}", "  ".repeat(depth), node.record.name);
    let _ = write!(out, " [{}us]", node.record.duration_us);
    for (key, value) in &node.record.fields {
        let _ = write!(out, " {key}={value}");
    }
    out.push('\n');
    for child in &node.children {
        render_text(child, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_records() -> Vec<SpanRecord> {
        let registry = Registry::new();
        let tracer = registry.tracer();
        let mut root = tracer.span("pipeline.build");
        root.record("workers", 2_usize);
        {
            let mut stage = root.child("pipeline.stage.probe");
            stage.record("note", "a \"quoted\"\nvalue");
            drop(stage.child("tnt.trace"));
            drop(stage.child("tnt.trace"));
        }
        drop(root);
        tracer.take_records()
    }

    #[test]
    fn chrome_trace_contains_one_event_per_span() {
        let records = sample_records();
        let json = to_chrome_trace(&records);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), records.len());
        assert!(json.contains("\"name\":\"pipeline.build\""));
        assert!(json.contains("\"workers\":2"));
        assert!(json.contains("\\\"quoted\\\"\\n"), "escaped: {json}");
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }

    #[test]
    fn chrome_trace_uniquifies_repeated_field_keys() {
        let registry = Registry::new();
        let tracer = registry.tracer();
        let mut span = tracer.span("detect");
        span.record("detection", "a");
        span.record("detection", "b");
        drop(span);
        let json = to_chrome_trace(&tracer.take_records());
        assert!(json.contains("\"detection\":\"a\""));
        assert!(json.contains("\"detection#2\":\"b\""));
    }

    #[test]
    fn flamegraph_collapses_and_weights_by_self_time() {
        let records = sample_records();
        let folded = to_flamegraph(&records);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 3, "{folded}");
        assert!(lines[0].starts_with("pipeline.build "));
        assert!(lines[1].starts_with("pipeline.build;pipeline.stage.probe "));
        assert!(lines[2].starts_with("pipeline.build;pipeline.stage.probe;tnt.trace "));
        for line in lines {
            let (_, weight) = line.rsplit_once(' ').unwrap();
            let _: u64 = weight.parse().expect("numeric weight");
        }
    }

    #[test]
    fn tree_reconstruction_and_structure() {
        let records = sample_records();
        let tree = SpanTree::build(records);
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.orphans, 0);
        assert_eq!(tree.len(), 4);
        assert!(!tree.is_empty());
        assert_eq!(tree.structure(), "pipeline.build(pipeline.stage.probe(tnt.trace,tnt.trace))");
        let text = tree.to_text();
        assert!(text.contains("workers=2"));
        assert!(text.starts_with("pipeline.build"));
    }

    #[test]
    fn structure_ignores_sibling_completion_order() {
        // Two forests with the same shape but shuffled record order
        // and different timings must render the same structure.
        let registry = Registry::new();
        let tracer = registry.tracer();
        let root = tracer.span("r");
        drop(root.child("b"));
        drop(root.child("a"));
        drop(root);
        let forward = SpanTree::build(tracer.take_records());

        let root = tracer.span("r");
        drop(root.child("a"));
        drop(root.child("b"));
        drop(root);
        let reversed = SpanTree::build(tracer.take_records());
        assert_eq!(forward.structure(), reversed.structure());
        assert_eq!(forward.structure(), "r(a,b)");
    }

    #[test]
    fn missing_parents_promote_to_orphan_roots() {
        let mut records = sample_records();
        // Simulate the ring evicting the root span.
        records.retain(|r| r.name != "pipeline.build");
        let tree = SpanTree::build(records);
        assert_eq!(tree.orphans, 1, "the stage span lost its parent");
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.len(), 3);
    }

    #[test]
    fn empty_input_renders_empty_everything() {
        assert_eq!(to_chrome_trace(&[]), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n");
        assert_eq!(to_flamegraph(&[]), "");
        let tree = SpanTree::build(Vec::new());
        assert!(tree.is_empty());
        assert_eq!(tree.structure(), "");
    }
}
