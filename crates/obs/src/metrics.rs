//! The three metric primitives and their shared cells.
//!
//! A handle ([`Counter`], [`Gauge`], [`Histogram`]) is two `Arc`s: the
//! metric's cell and the owning registry's enabled gate. Cloning a
//! handle is cheap and every clone observes the same cell, so
//! instrumented code caches handles in statics and records through
//! them from any thread.

use arest_conc::atomic::{AtomicI64, AtomicU64, Ordering};
// The enabled gate stays a plain std atomic even under `model-check`:
// it is write-once configuration read before recording, not
// synchronization between recorders, and modeling it would insert a
// schedule point into every gated no-op — inflating the schedule
// space of *other* crates' model tests without checking anything.
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Number of histogram buckets: bucket 0 holds zero-valued samples,
/// bucket `i` (1..=64) holds samples in `[2^(i-1), 2^i)`.
pub const BUCKETS: usize = 65;

/// The bucket a sample lands in: 0 for 0, else `64 - leading_zeros`.
#[inline]
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The `[lower, upper)` value range of bucket `index` (upper bound is
/// inclusive `u64::MAX` for the last bucket).
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    match index {
        0 => (0, 1),
        64 => (1 << 63, u64::MAX),
        i => (1 << (i - 1), 1 << i),
    }
}

#[derive(Debug, Default)]
pub(crate) struct CounterCell {
    pub(crate) value: AtomicU64,
}

#[derive(Debug, Default)]
pub(crate) struct GaugeCell {
    pub(crate) value: AtomicI64,
}

#[derive(Debug)]
pub(crate) struct HistogramCell {
    pub(crate) buckets: [AtomicU64; BUCKETS],
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> HistogramCell {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A monotonically increasing counter. Increments are relaxed atomic
/// adds; when the owning registry is disabled they are skipped
/// entirely (one relaxed load, no write, no allocation).
#[derive(Debug, Clone)]
pub struct Counter {
    pub(crate) gate: Arc<AtomicBool>,
    pub(crate) cell: Arc<CounterCell>,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.gate.load(Ordering::Relaxed) {
            self.cell.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.value.load(Ordering::Relaxed)
    }
}

/// A signed level that can move both ways (queue depths, in-flight
/// work). Same gating rules as [`Counter`].
#[derive(Debug, Clone)]
pub struct Gauge {
    pub(crate) gate: Arc<AtomicBool>,
    pub(crate) cell: Arc<GaugeCell>,
}

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, value: i64) {
        if self.gate.load(Ordering::Relaxed) {
            self.cell.value.store(value, Ordering::Relaxed);
        }
    }

    /// Moves the level by `delta` (negative to decrease).
    #[inline]
    pub fn add(&self, delta: i64) {
        if self.gate.load(Ordering::Relaxed) {
            self.cell.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Raises the level to `value` if it is higher — a high-watermark
    /// update (atomic `fetch_max`). Used for peak gauges such as the
    /// streaming result channel's maximum occupancy, where concurrent
    /// producers race to record the deepest queue they observed.
    #[inline]
    pub fn set_max(&self, value: i64) {
        if self.gate.load(Ordering::Relaxed) {
            self.cell.value.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// The current level.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.cell.value.load(Ordering::Relaxed)
    }
}

/// A histogram with fixed log₂-scale buckets (see [`BUCKETS`]):
/// resolution within 2× everywhere across the full `u64` range with a
/// constant, allocation-free footprint. Duration histograms record
/// microseconds and end in `.us` by convention.
#[derive(Debug, Clone)]
pub struct Histogram {
    pub(crate) gate: Arc<AtomicBool>,
    pub(crate) cell: Arc<HistogramCell>,
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        if self.gate.load(Ordering::Relaxed) {
            self.cell.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            self.cell.count.fetch_add(1, Ordering::Relaxed);
            self.cell.sum.fetch_add(value, Ordering::Relaxed);
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.cell.sum.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_follows_log2_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn concurrent_increments_all_land() {
        let registry = crate::Registry::new();
        let counter = registry.counter("c");
        let histogram = registry.histogram("h");
        arest_conc::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = counter.clone();
                let histogram = histogram.clone();
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        counter.inc();
                        histogram.record(i % 7);
                    }
                });
            }
        });
        assert_eq!(counter.get(), 80_000);
        assert_eq!(histogram.count(), 80_000);
        let snap = registry.snapshot();
        let hs = snap.histogram("h").unwrap();
        assert_eq!(hs.buckets.iter().sum::<u64>(), hs.count, "buckets stay consistent");
    }

    #[test]
    fn bucket_bounds_partition_the_u64_range() {
        assert_eq!(bucket_bounds(0), (0, 1));
        assert_eq!(bucket_bounds(1), (1, 2));
        assert_eq!(bucket_bounds(4), (8, 16));
        assert_eq!(bucket_bounds(64).1, u64::MAX);
        // Every bucket's lower bound maps back to that bucket, and the
        // value just below it maps to the previous one.
        for i in 1..BUCKETS {
            let (lo, _) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(lo - 1), i - 1, "below bucket {i}");
        }
    }
}
