//! # arest-obs
//!
//! Dependency-free observability for the AReST reproduction: the
//! metrics/tracing substrate every other crate instruments itself
//! with. The paper's measurement campaigns quantify their own
//! internals — probe budgets, response rates, coverage (TNT, the
//! SNMPv3 vendor study) — and this crate exposes the reproduction's
//! equivalents as first-class metrics instead of post-hoc prints.
//!
//! Three primitives, all lock-free on the hot path:
//!
//! * [`Counter`] — a monotonically increasing `AtomicU64`
//!   (packets forwarded, probes sent, per-flag detections);
//! * [`Gauge`] — a signed level (`AtomicI64`) that can go up and down
//!   (worker-pool queue depth);
//! * [`Histogram`] — fixed log₂-scale buckets over `u64` samples
//!   (stage latencies in microseconds, units per worker), with a
//!   scoped-timer front end ([`ScopedTimer`]).
//!
//! Handles are created once through a [`Registry`] (usually the
//! process-wide [`global`] one) and cached by the instrumented code in
//! `LazyLock` statics; after that one registration, recording is a
//! relaxed atomic gated on the registry's enabled flag. **When the
//! registry is disabled — the default — every record degenerates to
//! one relaxed load and a taken-branch skip: no allocation, no
//! `Instant::now()`, no atomic write.** A regression test pins the
//! no-allocation property on the simnet probe path.
//!
//! Observability never perturbs results: metrics are write-only from
//! the pipeline's perspective, so an `AREST_OBS=1` run produces
//! byte-identical experiment outputs to an `AREST_OBS=0` run (asserted
//! by a test in `arest-experiments`).
//!
//! ## Naming scheme
//!
//! Metric names are dot-separated `crate.subsystem.metric` paths, e.g.
//! `simnet.drop.no_route` or `tnt.reveal.triggers`. Duration
//! histograms end in `.us` and record microseconds. The scheme is
//! documented for consumers in the repository README ("Observability").
//!
//! ## Snapshots
//!
//! [`Registry::snapshot`] captures every metric into an ordered
//! [`Snapshot`]; [`Snapshot::diff`] subtracts a baseline so tests can
//! assert on deltas ("this campaign sent exactly N probes") without
//! caring what ran before. `arest-experiments` renders a snapshot into
//! the `RUN_REPORT` artifact at the end of an `AREST_OBS=1` run.
//!
//! ## Tracing
//!
//! Alongside aggregates, each registry carries a [`Tracer`] of
//! hierarchical [`Span`]s — name, key/value fields, parentage, and
//! microsecond timing — finished spans landing in a sharded bounded
//! ring buffer (drop-oldest beyond [`DEFAULT_TRACE_CAPACITY`]). Spans
//! obey the same gate and the same no-alloc promise: a span created
//! while the registry is disabled is inert and [`Span::record`] on it
//! converts nothing. [`SpanContext`] is a `Copy` handle that crosses
//! thread and work-unit boundaries, so a campaign unit stolen by
//! another pool worker stays parented under its (AS, VP) campaign
//! span. [`to_chrome_trace`] and [`to_flamegraph`] export drained
//! records for Perfetto / `chrome://tracing` and flamegraph tooling;
//! [`SpanTree`] rebuilds the hierarchy in-process.
//!
//! ```
//! use arest_obs::Registry;
//!
//! let registry = Registry::new(); // enabled; `global()` obeys AREST_OBS
//! let probes = registry.counter("tnt.probes");
//! let before = registry.snapshot();
//! probes.add(3);
//! let delta = registry.snapshot().diff(&before);
//! assert_eq!(delta.counter("tnt.probes"), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod metrics;
mod registry;
mod snapshot;
mod timer;
mod tracing;

pub use export::{to_chrome_trace, to_flamegraph, SpanNode, SpanTree};
pub use metrics::{bucket_bounds, bucket_index, Counter, Gauge, Histogram, BUCKETS};
pub use registry::{env_enabled, global, Registry};
pub use snapshot::{HistogramSnapshot, Snapshot};
pub use timer::ScopedTimer;
pub use tracing::{
    FieldValue, IntoFieldValue, Span, SpanContext, SpanRecord, Tracer, DEFAULT_TRACE_CAPACITY,
    TRACE_SHARDS,
};
