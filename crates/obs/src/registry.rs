//! The metric registry and the process-wide global instance.

use crate::metrics::{Counter, CounterCell, Gauge, GaugeCell, Histogram, HistogramCell};
use crate::snapshot::{HistogramSnapshot, Snapshot};
use crate::timer::ScopedTimer;
use crate::tracing::{Tracer, TracerCore};
use arest_conc::sync::Mutex;
use std::collections::BTreeMap;
// The gate is deliberately a std atomic — see the note in `metrics.rs`.
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, LazyLock};

/// One registered metric's shared cell.
#[derive(Debug, Clone)]
enum MetricCell {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistogramCell>),
}

impl MetricCell {
    fn kind(&self) -> &'static str {
        match self {
            MetricCell::Counter(_) => "counter",
            MetricCell::Gauge(_) => "gauge",
            MetricCell::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metrics behind one enabled/disabled gate.
///
/// Registration (`counter`/`gauge`/`histogram`) takes a lock and may
/// allocate; instrumented code therefore registers once (typically in
/// a `LazyLock` static) and records through the returned handles,
/// which are gate-checked relaxed atomics. Requesting an existing name
/// returns a handle to the same cell; requesting an existing name as a
/// *different* metric kind panics — that is a programming error, not a
/// runtime condition.
#[derive(Debug)]
pub struct Registry {
    gate: Arc<AtomicBool>,
    metrics: Mutex<BTreeMap<String, MetricCell>>,
    tracer: Arc<TracerCore>,
}

impl Default for Registry {
    /// A disabled registry whose tracer shares the metric gate.
    fn default() -> Registry {
        let gate = Arc::new(AtomicBool::new(false));
        Registry {
            tracer: Arc::new(TracerCore::new(Arc::clone(&gate))),
            gate,
            metrics: Mutex::default(),
        }
    }
}

impl Registry {
    /// An enabled registry (the natural default for tests and direct
    /// library use; the [`global`] registry instead starts from
    /// `AREST_OBS`).
    #[must_use]
    pub fn new() -> Registry {
        let registry = Registry::default();
        registry.set_enabled(true);
        registry
    }

    /// A disabled registry: handles still register, records are
    /// skipped.
    #[must_use]
    pub fn disabled() -> Registry {
        Registry::default()
    }

    /// Turns recording on or off. Handles created earlier observe the
    /// change immediately (they share the gate).
    pub fn set_enabled(&self, enabled: bool) {
        self.gate.store(enabled, Ordering::Relaxed);
    }

    /// Whether records are currently being kept.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.gate.load(Ordering::Relaxed)
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let cell = self.cell_for(name, || MetricCell::Counter(Arc::default()));
        match cell {
            MetricCell::Counter(cell) => Counter { gate: Arc::clone(&self.gate), cell },
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let cell = self.cell_for(name, || MetricCell::Gauge(Arc::default()));
        match cell {
            MetricCell::Gauge(cell) => Gauge { gate: Arc::clone(&self.gate), cell },
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram named `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let cell = self.cell_for(name, || MetricCell::Histogram(Arc::default()));
        match cell {
            MetricCell::Histogram(cell) => Histogram { gate: Arc::clone(&self.gate), cell },
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Starts a scoped timer that, when dropped (or explicitly
    /// [`ScopedTimer::stop`]ped), records the elapsed **microseconds**
    /// into the histogram named `name` (by convention ending in
    /// `.us`). When the registry is disabled at creation the timer is
    /// a no-op: it never reads the clock.
    pub fn timer(&self, name: &str) -> ScopedTimer {
        if self.is_enabled() {
            ScopedTimer::started(self.histogram(name))
        } else {
            ScopedTimer::noop()
        }
    }

    /// A handle onto this registry's span [`Tracer`]. Spans share the
    /// metric gate: while the registry is disabled, every span the
    /// tracer hands out is inert (see [`Tracer::span`]).
    #[must_use]
    pub fn tracer(&self) -> Tracer {
        Tracer { core: Arc::clone(&self.tracer) }
    }

    /// Re-bounds the tracer's ring buffer to roughly `total` retained
    /// spans (split evenly across shards). Existing records beyond the
    /// new bound are evicted oldest-first. See
    /// [`crate::DEFAULT_TRACE_CAPACITY`] for the default.
    pub fn set_trace_capacity(&self, total: usize) {
        self.tracer.set_capacity(total);
    }

    /// Captures every registered metric's current value. Works whether
    /// or not the registry is enabled (a disabled registry snapshots
    /// the zeros it accumulated).
    ///
    /// # Panics
    /// If the internal registration lock was poisoned by a panicking
    /// registration on another thread.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().expect("registry lock");
        let mut snapshot = Snapshot::default();
        for (name, cell) in metrics.iter() {
            match cell {
                MetricCell::Counter(c) => {
                    snapshot.counters.insert(name.clone(), c.value.load(Ordering::Relaxed));
                }
                MetricCell::Gauge(g) => {
                    snapshot.gauges.insert(name.clone(), g.value.load(Ordering::Relaxed));
                }
                MetricCell::Histogram(h) => {
                    snapshot.histograms.insert(name.clone(), HistogramSnapshot::capture(h));
                }
            }
        }
        snapshot
    }

    fn cell_for(&self, name: &str, make: impl FnOnce() -> MetricCell) -> MetricCell {
        let mut metrics = self.metrics.lock().expect("registry lock");
        if let Some(cell) = metrics.get(name) {
            return cell.clone();
        }
        let cell = make();
        metrics.insert(name.to_string(), cell.clone());
        cell
    }
}

/// The process-wide registry every AReST crate instruments itself
/// against. It starts enabled iff the `AREST_OBS` environment variable
/// is truthy at first use (see [`env_enabled`]); `arest-experiments`
/// additionally flips it from its `--obs` CLI toggle.
pub fn global() -> &'static Registry {
    static GLOBAL: LazyLock<Registry> = LazyLock::new(|| {
        let registry = Registry::disabled();
        registry.set_enabled(env_enabled().unwrap_or(false));
        registry
    });
    &GLOBAL
}

/// Parses the `AREST_OBS` environment variable: `1`/`true`/`yes`/`on`
/// enable, `0`/`false`/`no`/`off` disable (case-insensitive), anything
/// else — including an unset variable — is `None`.
#[must_use]
pub fn env_enabled() -> Option<bool> {
    let raw = std::env::var("AREST_OBS").ok()?;
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "yes" | "on" => Some(true),
        "0" | "false" | "no" | "off" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_the_same_cell() {
        let registry = Registry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "both handles share one cell");
    }

    #[test]
    fn gauge_set_max_is_a_high_watermark() {
        let registry = Registry::new();
        let gauge = registry.gauge("peak");
        gauge.set_max(5);
        gauge.set_max(3);
        assert_eq!(gauge.get(), 5, "lower values never pull the watermark down");
        gauge.set_max(9);
        assert_eq!(gauge.get(), 9);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let registry = Registry::disabled();
        let counter = registry.counter("c");
        let gauge = registry.gauge("g");
        let histogram = registry.histogram("h");
        counter.inc();
        gauge.set(7);
        gauge.add(3);
        gauge.set_max(11);
        histogram.record(42);
        assert_eq!(counter.get(), 0);
        assert_eq!(gauge.get(), 0);
        assert_eq!(histogram.count(), 0);
        assert_eq!(histogram.sum(), 0);
    }

    #[test]
    fn enabling_takes_effect_on_existing_handles() {
        let registry = Registry::disabled();
        let counter = registry.counter("c");
        counter.inc();
        registry.set_enabled(true);
        counter.inc();
        registry.set_enabled(false);
        counter.inc();
        assert_eq!(counter.get(), 1, "only the enabled window recorded");
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        let _ = registry.counter("same");
        let _ = registry.gauge("same");
    }

    #[test]
    fn disabled_timer_records_nothing() {
        let registry = Registry::disabled();
        {
            let _t = registry.timer("t.us");
        }
        assert_eq!(registry.histogram("t.us").count(), 0);
    }

    #[test]
    fn enabled_timer_records_one_sample() {
        let registry = Registry::new();
        {
            let _t = registry.timer("t.us");
        }
        assert_eq!(registry.histogram("t.us").count(), 1);
    }

    #[test]
    fn timer_stop_returns_elapsed_and_records_once() {
        let registry = Registry::new();
        let timer = registry.timer("s.us");
        let elapsed = timer.stop();
        assert!(elapsed.is_some());
        assert_eq!(registry.histogram("s.us").count(), 1);

        let noop = Registry::disabled().timer("s.us");
        assert!(noop.stop().is_none());
    }

    #[test]
    fn env_parsing() {
        // `env_enabled` reads the real environment; exercise the
        // parser through a controlled copy of its match logic being
        // unnecessary — instead assert the unset/garbage path here
        // (the test environment does not set AREST_OBS) and the
        // truthy table via the CLI integration tests.
        if std::env::var("AREST_OBS").is_err() {
            assert_eq!(env_enabled(), None);
        }
    }
}
