//! Point-in-time captures of a registry and deltas between them.

use crate::metrics::{bucket_bounds, HistogramCell, BUCKETS};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

/// An ordered capture of every metric in a registry. `BTreeMap`s keep
/// rendering deterministic (names sort lexicographically, which groups
/// by crate/subsystem under the dotted naming scheme).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// The named counter's value, `0` when absent — so tests can
    /// assert on deltas without first checking registration.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's level, `0` when absent.
    #[must_use]
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, when present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// What happened between `baseline` and `self`: counter and
    /// histogram values are subtracted bucket-wise (saturating, so a
    /// fresh metric diffs against an implicit zero), gauges report the
    /// signed level change. Metrics that exist only in `baseline` are
    /// dropped — a registry never unregisters, so that cannot happen
    /// for captures of one registry taken in order.
    #[must_use]
    pub fn diff(&self, baseline: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(name, &v)| (name.clone(), v.saturating_sub(baseline.counter(name))))
            .collect();
        let gauges =
            self.gauges.iter().map(|(name, &v)| (name.clone(), v - baseline.gauge(name))).collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| (name.clone(), h.diff(baseline.histograms.get(name))))
            .collect();
        Snapshot { counters, gauges, histograms }
    }

    /// Whether nothing was recorded (all values zero). Useful for
    /// asserting a disabled run left no trace.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.counters.values().all(|&v| v == 0)
            && self.gauges.values().all(|&v| v == 0)
            && self.histograms.values().all(|h| h.count == 0)
    }
}

/// One histogram's captured state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Per-bucket sample counts (length [`BUCKETS`]; bucket 0 is the
    /// zero-value bucket, bucket `i` covers `[2^(i-1), 2^i)`).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    pub(crate) fn capture(cell: &HistogramCell) -> HistogramSnapshot {
        HistogramSnapshot {
            count: cell.count.load(Ordering::Relaxed),
            sum: cell.sum.load(Ordering::Relaxed),
            buckets: cell.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }

    fn diff(&self, baseline: Option<&HistogramSnapshot>) -> HistogramSnapshot {
        let Some(base) = baseline else { return self.clone() };
        HistogramSnapshot {
            count: self.count.saturating_sub(base.count),
            sum: self.sum.saturating_sub(base.sum),
            buckets: self
                .buckets
                .iter()
                .zip(base.buckets.iter().chain(std::iter::repeat(&0)))
                .map(|(&a, &b)| a.saturating_sub(b))
                .collect(),
        }
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound for the `q`-quantile (0.0..=1.0): the exclusive
    /// upper edge of the log₂ bucket holding the ⌈q·count⌉-th sample.
    /// Bucketed, so accurate to within 2×.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate().take(BUCKETS) {
            seen += n;
            if seen >= rank {
                return bucket_bounds(i).1;
            }
        }
        bucket_bounds(BUCKETS - 1).1
    }

    /// The (p50, p95, p99) triple the report renderers show, each an
    /// exclusive log₂-bucket upper bound (see [`Self::quantile`]).
    #[must_use]
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (self.quantile(0.50), self.quantile(0.95), self.quantile(0.99))
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::Registry;

    #[test]
    fn diff_subtracts_counters_histograms_and_gauges() {
        let registry = Registry::new();
        let c = registry.counter("c");
        let g = registry.gauge("g");
        let h = registry.histogram("h");
        c.add(5);
        g.set(10);
        h.record(3);
        let before = registry.snapshot();

        c.add(7);
        g.add(-4);
        h.record(3);
        h.record(100);
        let delta = registry.snapshot().diff(&before);

        assert_eq!(delta.counter("c"), 7);
        assert_eq!(delta.gauge("g"), -4);
        let dh = delta.histogram("h").unwrap();
        assert_eq!(dh.count, 2);
        assert_eq!(dh.sum, 103);
        assert_eq!(dh.buckets[2], 1, "one new sample in [2,4)");
        assert_eq!(dh.buckets[7], 1, "one new sample in [64,128)");
        assert_eq!(dh.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn diff_against_missing_baseline_metric_is_identity() {
        let registry = Registry::new();
        let before = registry.snapshot(); // "c" not yet registered
        registry.counter("c").add(9);
        let delta = registry.snapshot().diff(&before);
        assert_eq!(delta.counter("c"), 9);
    }

    #[test]
    fn is_zero_detects_untouched_registries() {
        let registry = Registry::disabled();
        registry.counter("c").inc(); // skipped: disabled
        registry.histogram("h").record(1); // skipped
        assert!(registry.snapshot().is_zero());
        registry.set_enabled(true);
        registry.counter("c").inc();
        assert!(!registry.snapshot().is_zero());
    }

    #[test]
    fn quantile_returns_bucket_upper_bounds() {
        let registry = Registry::new();
        let h = registry.histogram("h");
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            h.record(v);
        }
        let snap = registry.snapshot();
        let hs = snap.histogram("h").unwrap();
        assert_eq!(hs.quantile(0.5), 2, "median sample is 1 → bucket [1,2)");
        assert_eq!(hs.quantile(1.0), 1024, "max sits in [512,1024)");
        assert_eq!(hs.mean(), 100.9);
    }

    #[test]
    fn percentiles_land_in_exact_buckets() {
        // 100 samples with known bucket placement:
        //   50 × 1   → bucket [1,2)    (ranks  1..=50)
        //   45 × 8   → bucket [8,16)   (ranks 51..=95)
        //    5 × 100 → bucket [64,128) (ranks 96..=100)
        let registry = Registry::new();
        let h = registry.histogram("h");
        for _ in 0..50 {
            h.record(1);
        }
        for _ in 0..45 {
            h.record(8);
        }
        for _ in 0..5 {
            h.record(100);
        }
        let snap = registry.snapshot();
        let hs = snap.histogram("h").unwrap();
        assert_eq!(hs.count, 100);
        let (p50, p95, p99) = hs.percentiles();
        assert_eq!(p50, 2, "rank 50 is the last 1-sample → [1,2) upper bound");
        assert_eq!(p95, 16, "rank 95 is the last 8-sample → [8,16) upper bound");
        assert_eq!(p99, 128, "rank 99 is a 100-sample → [64,128) upper bound");
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let registry = Registry::new();
        registry.histogram("h");
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("h").unwrap().quantile(0.99), 0);
    }
}
