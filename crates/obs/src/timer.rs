//! Scoped stage/span timing on top of histograms.

use crate::metrics::Histogram;
use std::time::{Duration, Instant};

/// Times a scope and records the elapsed **microseconds** into a
/// histogram when dropped (or explicitly [`stop`](ScopedTimer::stop)ped).
///
/// Created through [`crate::Registry::timer`]. When the registry is
/// disabled at creation the timer is inert: it holds no histogram,
/// never calls `Instant::now()`, and its drop is a no-op — so leaving
/// timers in place costs nothing on disabled builds.
#[derive(Debug)]
pub struct ScopedTimer {
    inner: Option<(Histogram, Instant)>,
}

impl ScopedTimer {
    pub(crate) fn started(histogram: Histogram) -> ScopedTimer {
        ScopedTimer { inner: Some((histogram, Instant::now())) }
    }

    pub(crate) fn noop() -> ScopedTimer {
        ScopedTimer { inner: None }
    }

    /// Stops the timer now, recording the sample, and returns the
    /// elapsed time — `None` for a no-op timer.
    pub fn stop(mut self) -> Option<Duration> {
        let (histogram, started) = self.inner.take()?;
        let elapsed = started.elapsed();
        histogram.record(duration_to_us(elapsed));
        Some(elapsed)
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        if let Some((histogram, started)) = self.inner.take() {
            histogram.record(duration_to_us(started.elapsed()));
        }
    }
}

fn duration_to_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}
