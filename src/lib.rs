//! # arest-suite
//!
//! Umbrella crate for the AReST reproduction. It re-exports every
//! workspace crate under a short name so examples and integration
//! tests can reach the whole pipeline through one dependency.
//!
//! See `DESIGN.md` at the workspace root for the system inventory and
//! `EXPERIMENTS.md` for the paper-versus-measured record.
//!
//! ## The core API in 20 lines
//!
//! The README's detection snippet, compile-tested here: build one
//! augmented trace (addresses + quoted label-stack evidence) and run
//! the five-flag detector over it.
//!
//! ```
//! use arest_suite::core::detect::{detect_segments, DetectorConfig};
//! use arest_suite::core::model::{AugmentedHop, AugmentedTrace};
//! use arest_suite::wire::mpls::{Label, LabelStack};
//! use std::net::Ipv4Addr;
//!
//! // One augmented trace: addresses + quoted LSE stacks (+ optional
//! // vendor evidence from fingerprinting).
//! let hops = vec![
//!     AugmentedHop::labeled(
//!         Ipv4Addr::new(10, 0, 0, 1),
//!         LabelStack::from_labels(&[Label::new(16_005).unwrap()], 1),
//!     ),
//!     AugmentedHop::labeled(
//!         Ipv4Addr::new(10, 0, 0, 2),
//!         LabelStack::from_labels(&[Label::new(16_005).unwrap()], 1),
//!     ),
//! ];
//! let trace = AugmentedTrace::new("vp1", Ipv4Addr::new(203, 0, 113, 9), hops);
//!
//! let segments = detect_segments(&trace, &DetectorConfig::default());
//! assert_eq!(segments[0].flag.to_string(), "CO"); // same label, two routers
//! ```

#![forbid(unsafe_code)]

pub use arest_audit as audit;
pub use arest_conc as conc;
pub use arest_core as core;
pub use arest_experiments as experiments;
pub use arest_fingerprint as fingerprint;
pub use arest_mapping as mapping;
pub use arest_mpls as mpls;
pub use arest_netgen as netgen;
pub use arest_obs as obs;
pub use arest_simnet as simnet;
pub use arest_sr as sr;
pub use arest_survey as survey;
pub use arest_tnt as tnt;
pub use arest_topo as topo;
pub use arest_wire as wire;
