//! # arest-suite
//!
//! Umbrella crate for the AReST reproduction. It re-exports every
//! workspace crate under a short name so examples and integration
//! tests can reach the whole pipeline through one dependency.
//!
//! See `DESIGN.md` at the workspace root for the system inventory and
//! `EXPERIMENTS.md` for the paper-versus-measured record.

#![forbid(unsafe_code)]

pub use arest_audit as audit;
pub use arest_core as core;
pub use arest_experiments as experiments;
pub use arest_fingerprint as fingerprint;
pub use arest_mapping as mapping;
pub use arest_mpls as mpls;
pub use arest_netgen as netgen;
pub use arest_simnet as simnet;
pub use arest_sr as sr;
pub use arest_survey as survey;
pub use arest_tnt as tnt;
pub use arest_topo as topo;
pub use arest_wire as wire;
